#include "scenario/runner.hh"

#include <algorithm>
#include <filesystem>
#include <iomanip>
#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"
#include "scenario/builder.hh"
#include "chaos/chaos.hh"

namespace pipellm {
namespace scenario {

namespace {

std::string
fixed(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

/** Shared per-kind state: builder, options, output and bookkeeping. */
struct Sweep
{
    const ScenarioSpec &spec;
    const RunOptions &opts;
    ScenarioBuilder builder;
    RunSummary summary;

    Sweep(const ScenarioSpec &s, const RunOptions &o)
        : spec(s), opts(o), builder(s)
    {
    }

    unsigned
    threads() const
    {
        return opts.threads >= 0 ? unsigned(opts.threads)
                                 : spec.cluster.threads;
    }

    template <typename... Args>
    void
    say(const Args &...args)
    {
        if (opts.progress)
            opts.progress(logConcat(args...));
    }

    CsvWriter
    open(const std::string &name)
    {
        std::filesystem::create_directories(opts.out_dir);
        std::string path = opts.out_dir + "/" + name;
        summary.csv_paths.push_back(path);
        return CsvWriter(path);
    }

    /** "soak.csv" + "_overload" -> "soak_overload.csv". */
    std::string
    derivedCsv(const std::string &suffix) const
    {
        std::string base = spec.csv;
        const std::string ext = ".csv";
        if (base.size() >= ext.size() &&
            base.compare(base.size() - ext.size(), ext.size(), ext) ==
                0)
            base.erase(base.size() - ext.size());
        return base + suffix + ext;
    }

    void
    assertIntegrity(runtime::Platform &platform, unsigned n)
    {
        for (unsigned d = 0; d < n; ++d) {
            PIPELLM_ASSERT(platform.gpu(d).integrityFailures() == 0,
                           "integrity failure on device ", d);
        }
    }
};

void
runClusterScale(Sweep &s)
{
    auto csv = s.open(s.spec.csv);
    csv.header({"n_devices", "mode", "policy", "offered_rate",
                "tokens_per_s", "speedup_vs_1dev", "norm_latency_s_tok",
                "p90_norm_latency_s_tok", "completed", "preemptions",
                "makespan_s", "replica", "replica_requests",
                "replica_tokens_per_s", "replica_norm_latency_s_tok",
                "replica_h2d_gb", "replica_cpu_crypto_gb", "host_mode",
                "shared_lanes", "bridge_gbps"});

    const auto &devices = s.spec.deviceAxis(s.opts.quick);
    std::size_t requests_per_device =
        s.spec.requestsPerDevice(s.opts.quick);
    auto policy = s.spec.cluster.policy;

    for (const auto &host : s.spec.hostAxis()) {
        auto res = s.builder.hostResources(host);
        for (SystemMode mode : s.spec.cluster.modes) {
            double base_tps = 0;
            s.say("-- ", toString(mode), " (",
                  serving::toString(policy), " routing, ", host.name,
                  " host) --");
            for (unsigned n : devices) {
                auto built = s.builder.build(mode, n, host, 0,
                                             s.threads());
                auto r = built.router->run(s.builder.poissonTrace(
                    requests_per_device * n, n));
                ++s.summary.runs;
                s.assertIntegrity(*built.platform, n);
                if (n == 1)
                    base_tps = r.tokens_per_sec;
                double speedup =
                    base_tps > 0 ? r.tokens_per_sec / base_tps : 0;
                s.say("N=", n, "  ", fixed(r.tokens_per_sec, 1),
                      " tok/s  (x", fixed(speedup, 2), ")  ",
                      fixed(r.normalized_latency, 4), " s/tok  p90 ",
                      fixed(r.p90_normalized_latency, 4),
                      "  completed ", r.completed);
                for (const auto &rep : r.replicas) {
                    double rep_tps =
                        rep.result.total_time
                            ? double(rep.routed_tokens) /
                                  toSeconds(rep.result.total_time)
                            : 0;
                    csv.field(n).field(toString(mode))
                        .field(serving::toString(policy))
                        .field(s.spec.trace.rate_per_device * n)
                        .field(r.tokens_per_sec)
                        .field(speedup).field(r.normalized_latency)
                        // Historical column: the completed-weighted
                        // mean of replica p90s, kept so the committed
                        // CSV stays byte-identical (the true merged
                        // p90 lives in p90_normalized_latency).
                        .field(r.replica_weighted_p90)
                        .field(r.completed).field(r.preemptions)
                        .field(toSeconds(r.makespan)).field(rep.device)
                        .field(rep.requests).field(rep_tps)
                        .field(rep.result.normalized_latency)
                        .field(double(rep.runtime_stats.h2d_bytes) /
                               1e9)
                        .field(
                            double(rep.runtime_stats.cpu_encrypt_bytes +
                                   rep.runtime_stats
                                       .cpu_decrypt_bytes) /
                            1e9)
                        .field(host.name)
                        .field(host.shared_crypto_lanes)
                        .field(res.bridge_bw / 1e9)
                        .endRow();
                }
            }
        }
    }
    s.summary.rows += csv.rows();
}

void
runFaultSweep(Sweep &s)
{
    auto csv = s.open(s.spec.csv);
    // The column prefix up to replica_lost_tokens is frozen: scale-0
    // rows must stay byte-identical to the committed file, so
    // p90_norm_latency_s_tok still carries the historical completed-
    // weighted mean of replica p90s (ClusterResult::
    // replica_weighted_p90) and every new column — the true merged
    // p90 and the restart/goodput-dip metrics — is appended after it.
    csv.header({"n_devices", "mode", "fault_scale", "tag_rate",
                "stall_rate", "lane_rate", "crash_rate_per_s",
                "tokens_per_s", "goodput_tok_per_s",
                "norm_latency_s_tok", "p90_norm_latency_s_tok",
                "completed", "dropped", "makespan_s", "tag_faults",
                "tag_retries", "copy_stalls", "lane_faults",
                "crashes", "requeued", "lost_tokens",
                "degraded_entries", "degraded_sends",
                "retry_latency_s", "replica", "replica_crashed",
                "replica_crash_s", "replica_requests",
                "replica_requeued", "replica_absorbed",
                "replica_dropped", "replica_lost_tokens",
                "true_p90_norm_latency_s_tok", "restart_rate_per_s",
                "restarts", "rejoin_time_total_s",
                "goodput_dip_depth", "goodput_dip_s",
                "replica_crash_count", "replica_restarts",
                "replica_rejoined", "replica_rejoin_s",
                "replica_time_to_rejoin_s"});

    const auto &devices = s.spec.deviceAxis(s.opts.quick);
    const auto &scales = s.spec.scaleAxis(s.opts.quick);
    std::size_t requests_per_device =
        s.spec.requestsPerDevice(s.opts.quick);
    const HostVariantSpec private_host;

    for (SystemMode mode : s.spec.cluster.modes) {
        for (unsigned n : devices) {
            s.say("-- ", toString(mode), ", N=", n, " --");
            for (double scale : scales) {
                auto built = s.builder.build(mode, n, private_host,
                                             scale, s.threads());
                auto r = built.router->run(s.builder.poissonTrace(
                    requests_per_device * n, n));
                ++s.summary.runs;
                if (scale == 0) {
                    // Disarmed rows are the byte-identical fault-free
                    // baseline; armed rows legitimately see injected
                    // integrity failures.
                    s.assertIntegrity(*built.platform, n);
                }
                const auto plan = s.builder.scaledPlan(scale);
                const auto &f = r.faults;
                s.say("scale ", fixed(scale, 1), "  ",
                      fixed(r.tokens_per_sec, 1), " tok/s goodput ",
                      fixed(r.goodput_tokens_per_sec, 1), "  ",
                      fixed(r.normalized_latency, 4),
                      " s/tok  retries ", f.tag_retries, "  crashes ",
                      f.replica_crashes, "  restarts ",
                      f.replica_restarts, "  requeued ",
                      f.requeued_requests, "  dropped ", r.dropped);
                // Goodput dip around the first crash: depth and time
                // below the recovery bar (zeros when no replica
                // crashed, e.g. every scale-0 row).
                chaos::DipMetrics dip;
                Tick first_crash = maxTick;
                for (const auto &rep : r.replicas) {
                    if (rep.crash_count > 0)
                        first_crash =
                            std::min(first_crash, rep.crash_time);
                }
                if (first_crash != maxTick) {
                    auto timeline = chaos::goodputTimeline(
                        r.completions,
                        seconds(s.spec.faults.dip_window_s));
                    dip = chaos::dipAfter(
                        timeline, first_crash,
                        s.spec.faults.dip_recover_frac);
                }
                for (const auto &rep : r.replicas) {
                    csv.field(n).field(toString(mode)).field(scale)
                        .field(scale > 0 ? plan.tag_corruption_rate
                                         : 0.0)
                        .field(scale > 0 ? plan.copy_stall_rate : 0.0)
                        .field(scale > 0 ? plan.lane_fault_rate : 0.0)
                        .field(scale > 0 ? plan.replica_crash_rate
                                         : 0.0)
                        .field(r.tokens_per_sec)
                        .field(r.goodput_tokens_per_sec)
                        .field(r.normalized_latency)
                        .field(r.replica_weighted_p90)
                        .field(r.completed).field(r.dropped)
                        .field(toSeconds(r.makespan))
                        .field(f.tag_faults).field(f.tag_retries)
                        .field(f.copy_stalls).field(f.lane_faults)
                        .field(f.replica_crashes)
                        .field(f.requeued_requests)
                        .field(f.lost_tokens).field(f.degraded_entries)
                        .field(f.degraded_sends)
                        .field(toSeconds(f.retry_latency))
                        .field(rep.device).field(rep.crashed ? 1 : 0)
                        .field(rep.crashed ? toSeconds(rep.crash_time)
                                           : 0.0)
                        .field(rep.requests).field(rep.requeued)
                        .field(rep.absorbed).field(rep.dropped)
                        .field(rep.lost_tokens)
                        .field(r.p90_normalized_latency)
                        .field(scale > 0 ? plan.replica_restart_rate
                                         : 0.0)
                        .field(f.replica_restarts)
                        .field(toSeconds(f.restart_rejoin_ticks))
                        .field(dip.dip_depth)
                        .field(toSeconds(dip.dip_duration))
                        .field(rep.crash_count).field(rep.restarts)
                        .field(rep.rejoined ? 1 : 0)
                        .field(rep.rejoined
                                   ? toSeconds(rep.rejoin_time)
                                   : 0.0)
                        .field(toSeconds(rep.time_to_rejoin))
                        .endRow();
                }
            }
        }
    }
    s.summary.rows += csv.rows();
}

void
runSoakKind(Sweep &s)
{
    // Part 1: the phased chaos soak with its recovery invariants.
    auto plan = s.builder.soakPlan(s.opts.quick);
    auto result = chaos::runSoak(plan);
    ++s.summary.runs;
    const auto &c = result.cluster;
    const auto &f = c.faults;

    s.say("completed ", c.completed, "  goodput ",
          fixed(c.goodput_tokens_per_sec, 1), " tok/s  slo-goodput ",
          fixed(c.slo_goodput_tokens_per_sec, 1), " tok/s  true p90 ",
          fixed(c.p90_normalized_latency, 4), " s/tok");
    s.say("crashes ", f.replica_crashes, "  restarts ",
          f.replica_restarts, "  requeued ", f.requeued_requests,
          "  shed ", c.shed_requests, " (", c.shed_tokens,
          " tok)  deferred ", c.deferred_to_rejoin);

    {
        auto csv = s.open(s.spec.csv);
        csv.header({"window_start_s", "window_end_s",
                    "goodput_tok_per_s"});
        for (const auto &w : result.timeline) {
            csv.field(toSeconds(w.start)).field(toSeconds(w.end))
                .field(w.tokens_per_sec).endRow();
        }
        s.summary.rows += csv.rows();
    }

    {
        auto dcsv = s.open(s.derivedCsv("_disturbances"));
        dcsv.header({"disturbance", "at_s", "baseline_tok_per_s",
                     "min_tok_per_s", "dip_depth", "dip_duration_s",
                     "recovered", "recovery_at_s"});
        for (const auto &d : result.disturbances) {
            s.say("  ", d.what, " at ", fixed(toSeconds(d.at), 2),
                  " s  baseline ", fixed(d.dip.baseline_tps, 1),
                  "  min ", fixed(d.dip.min_tps, 1), "  depth ",
                  fixed(d.dip.dip_depth, 2), "  below-bar ",
                  fixed(toSeconds(d.dip.dip_duration), 2), " s  ",
                  d.dip.recovered ? "recovered" : "NOT RECOVERED");
            dcsv.field(d.what).field(toSeconds(d.at))
                .field(d.dip.baseline_tps).field(d.dip.min_tps)
                .field(d.dip.dip_depth)
                .field(toSeconds(d.dip.dip_duration))
                .field(d.dip.recovered ? 1 : 0)
                .field(toSeconds(d.dip.recovery_at)).endRow();
        }
        s.summary.rows += dcsv.rows();
    }

    // The soak's two invariants. The auditor would already have
    // trapped mid-run on any violation; the count is belt and braces.
    PIPELLM_ASSERT(result.audit_violations == 0,
                   "invariant auditor recorded ",
                   result.audit_violations, " violations");
    PIPELLM_ASSERT(result.allRecovered(),
                   "goodput did not recover after every disturbance");
    s.say("soak invariants held: auditor silent, goodput recovered "
          "after all ",
          result.disturbances.size(), " disturbances");

    // Part 2: the overload sweep, admission off vs on.
    const OverloadSpec &o = s.spec.overload;
    std::size_t n_requests =
        s.opts.quick && o.requests_quick > 0 ? o.requests_quick
                                             : o.requests;
    if (n_requests == 0)
        return;
    const auto &multipliers =
        s.opts.quick && !o.multipliers_quick.empty()
            ? o.multipliers_quick
            : o.multipliers;

    auto csv = s.open(s.derivedCsv("_overload"));
    csv.header({"rate_multiplier", "shed", "requests", "completed",
                "shed_requests", "shed_tokens", "slo_missed",
                "goodput_tok_per_s", "slo_goodput_tok_per_s",
                "norm_latency_s_tok", "p90_norm_latency_s_tok",
                "backpressure_deferrals", "makespan_s"});
    for (bool shed : {false, true}) {
        for (double mult : multipliers) {
            auto oplan =
                s.builder.overloadPlan(s.opts.quick, mult, shed);
            auto r = chaos::runSoak(oplan);
            ++s.summary.runs;
            const auto &oc = r.cluster;
            s.say("x", fixed(mult, 1), " shed=", shed ? 1 : 0,
                  "  completed ", oc.completed, "  shed ",
                  oc.shed_requests, "  p90 ",
                  fixed(oc.p90_normalized_latency, 4),
                  " s/tok  goodput ",
                  fixed(oc.goodput_tokens_per_sec, 1),
                  "  slo-goodput ",
                  fixed(oc.slo_goodput_tokens_per_sec, 1));
            csv.field(mult).field(shed ? 1 : 0).field(n_requests)
                .field(oc.completed).field(oc.shed_requests)
                .field(oc.shed_tokens).field(oc.slo_missed)
                .field(oc.goodput_tokens_per_sec)
                .field(oc.slo_goodput_tokens_per_sec)
                .field(oc.normalized_latency)
                .field(oc.p90_normalized_latency)
                .field(oc.backpressure_deferrals)
                .field(toSeconds(oc.makespan)).endRow();
        }
    }
    s.summary.rows += csv.rows();
}

void
runDisagg(Sweep &s)
{
    auto csv = s.open(s.spec.csv);
    csv.header({"n_devices", "prefill_replicas", "decode_replicas",
                "mode", "fault_scale", "migration_tag_rate",
                "migration_stall_rate", "dest_crash_rate",
                "offered_rate", "tokens_per_s", "goodput_tok_per_s",
                "norm_latency_s_tok", "p90_norm_latency_s_tok",
                "completed", "dropped", "makespan_s", "migrations",
                "migrated_chunks", "discarded_chunks",
                "speculated_ivs", "migration_tag_faults",
                "migration_retries", "migration_stalls",
                "migration_fallbacks", "dest_crashes",
                "migrations_rerouted", "replica", "replica_role",
                "replica_requests", "replica_completed",
                "replica_tokens_per_s"});

    const auto &devices = s.spec.deviceAxis(s.opts.quick);
    const auto &scales = s.spec.scaleAxis(s.opts.quick);
    std::size_t requests_per_device =
        s.spec.requestsPerDevice(s.opts.quick);
    const HostVariantSpec private_host;

    for (SystemMode mode : s.spec.cluster.modes) {
        for (unsigned n : devices) {
            s.say("-- ", toString(mode), ", N=", n, " --");
            for (double scale : scales) {
                auto built = s.builder.build(mode, n, private_host,
                                             scale, s.threads());
                auto r = built.router->run(s.builder.poissonTrace(
                    requests_per_device * n, n));
                ++s.summary.runs;
                if (scale == 0) {
                    // Disarmed rows are the byte-identical fault-free
                    // baseline; armed rows legitimately see injected
                    // integrity failures on the migration links.
                    s.assertIntegrity(*built.platform, n);
                }
                const auto plan = s.builder.scaledPlan(scale);
                const auto &f = r.faults;
                unsigned prefill_n = 0;
                for (const auto &rep : r.replicas)
                    prefill_n += rep.prefill ? 1 : 0;
                s.say("scale ", fixed(scale, 1), "  ",
                      fixed(r.tokens_per_sec, 1), " tok/s  ",
                      fixed(r.normalized_latency, 4), " s/tok  ",
                      "migrations ", f.migrations, " (",
                      f.migrated_chunks, " chunks, ",
                      f.speculated_migration_ivs, " speculated IVs)  ",
                      "retries ", f.migration_retries, "  stalls ",
                      f.migration_stalls, "  rerouted ",
                      f.migrations_rerouted, "  fallbacks ",
                      f.migration_fallbacks);
                for (const auto &rep : r.replicas) {
                    double rep_tps =
                        rep.result.total_time
                            ? double(rep.routed_tokens) /
                                  toSeconds(rep.result.total_time)
                            : 0;
                    csv.field(n).field(prefill_n)
                        .field(n - prefill_n).field(toString(mode))
                        .field(scale)
                        .field(scale > 0 ? plan.migration_tag_rate
                                         : 0.0)
                        .field(scale > 0 ? plan.migration_stall_rate
                                         : 0.0)
                        .field(scale > 0 ? plan.dest_crash_rate : 0.0)
                        .field(s.spec.trace.rate_per_device * n)
                        .field(r.tokens_per_sec)
                        .field(r.goodput_tokens_per_sec)
                        .field(r.normalized_latency)
                        .field(r.p90_normalized_latency)
                        .field(r.completed).field(r.dropped)
                        .field(toSeconds(r.makespan))
                        .field(f.migrations).field(f.migrated_chunks)
                        .field(f.discarded_chunks)
                        .field(f.speculated_migration_ivs)
                        .field(f.migration_tag_faults)
                        .field(f.migration_retries)
                        .field(f.migration_stalls)
                        .field(f.migration_fallbacks)
                        .field(f.dest_mid_migration_crashes)
                        .field(f.migrations_rerouted)
                        .field(rep.device)
                        .field(rep.prefill ? "prefill" : "decode")
                        .field(rep.requests)
                        .field(rep.result.completed).field(rep_tps)
                        .endRow();
                }
            }
        }
    }
    s.summary.rows += csv.rows();
}

} // namespace

RunSummary
runScenario(const ScenarioSpec &spec, const RunOptions &opts)
{
    Sweep sweep(spec, opts);
    sweep.say("=== scenario ", spec.name, " (", toString(spec.kind),
              opts.quick ? ", quick" : "", ") ===");
    switch (spec.kind) {
      case ScenarioKind::ClusterScale:
        runClusterScale(sweep);
        break;
      case ScenarioKind::FaultSweep:
        runFaultSweep(sweep);
        break;
      case ScenarioKind::Soak:
        runSoakKind(sweep);
        break;
      case ScenarioKind::Disagg:
        runDisagg(sweep);
        break;
    }
    return std::move(sweep.summary);
}

} // namespace scenario
} // namespace pipellm
