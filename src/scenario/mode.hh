/**
 * @file
 * The one source of truth for the systems the evaluation compares.
 *
 * Every bench used to carry its own copy of this enum, its display
 * names, and the switch instantiating the matching runtime; scenario
 * files and benches now share one vocabulary, so "Cc" in a .scenario
 * file, the "CC" column in a committed CSV, and the CcRuntime the
 * router boots are guaranteed to mean the same system.
 */

#ifndef PIPELLM_SCENARIO_MODE_HH
#define PIPELLM_SCENARIO_MODE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "llm/model.hh"
#include "pipellm/config.hh"
#include "runtime/api.hh"
#include "runtime/platform.hh"

namespace pipellm {
namespace scenario {

/** The systems compared across the evaluation. */
enum class SystemMode : std::uint8_t
{
    Plain, ///< "w/o CC"
    Cc,    ///< NVIDIA CC, 1 crypto thread
    Cc4t,  ///< NVIDIA CC, 4 crypto threads (Fig. 9)
    Pipe,  ///< PipeLLM
    Pipe0, ///< PipeLLM with 0% sequence-prediction success (Fig. 10)
};

/** Display name used in figures and committed CSV columns. */
const char *toString(SystemMode mode);

/** Identifier used in .scenario files (Plain/Cc/Cc4t/Pipe/Pipe0). */
const char *keyOf(SystemMode mode);

/** Parse a scenario-file identifier; nullopt on unknown names. */
std::optional<SystemMode> parseSystemMode(const std::string &name);

/** PipeLLM configuration for model-offloading workloads (§7.2). */
core::PipeLlmConfig offloadPipeConfig(const llm::ModelConfig &model);

/** PipeLLM configuration for KV-cache swapping (vLLM: 1+1 threads). */
core::PipeLlmConfig kvPipeConfig(std::uint64_t kv_unit_bytes);

/** Instantiate the runtime for @p mode on @p platform's @p device. */
std::unique_ptr<runtime::RuntimeApi> makeRuntime(
    SystemMode mode, runtime::Platform &platform,
    const core::PipeLlmConfig &pipe_cfg, runtime::DeviceId device = 0);

} // namespace scenario
} // namespace pipellm

#endif // PIPELLM_SCENARIO_MODE_HH
