/**
 * @file
 * Declarative scenario description: one text file naming the cluster
 * topology, device profile, workload trace, fault plan, admission/SLO
 * configuration and sweep axes of an experiment.
 *
 * The format is a deliberately tiny sections + key/value dialect — no
 * external dependencies, strict about unknown keys — so a scenario is
 * reviewable in a diff and every evaluation point is data, not code:
 *
 *     [scenario]
 *     name = cluster_scale
 *     kind = cluster_scale
 *
 *     [cluster]
 *     devices = 1 2 4 8
 *     modes = Plain Cc Pipe
 *
 *     [host shared]
 *     shared_crypto_lanes = 2
 *     bridge_gbps = 160
 *
 * Lists are whitespace-separated; `[host <name>]` sections repeat, one
 * per swept host-resource variant; the `phase` key repeats inside
 * `[soak]`. Every `*_quick` key gives the CI-smoke variant of its
 * sweep axis. parseScenario() collects *all* errors (unknown keys,
 * malformed values) instead of stopping at the first;
 * ScenarioSpec::validate() adds semantic checks (empty axes, negative
 * bandwidths, fault plans naming absent devices) with actionable
 * messages. dumpScenario() emits a canonical text that parses back to
 * an equal spec, which is what the round-trip tests pin down.
 */

#ifndef PIPELLM_SCENARIO_SPEC_HH
#define PIPELLM_SCENARIO_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/mode.hh"
#include "serving/cluster.hh"

namespace pipellm {
namespace scenario {

/** The sweep/figure family a scenario expands into. */
enum class ScenarioKind : std::uint8_t
{
    /** Replica-scaling sweep: host variants x modes x device counts
     *  (the bench_cluster_scale shape). */
    ClusterScale,
    /** Fault-intensity sweep: modes x device counts x fault scales
     *  (the bench_faults shape). */
    FaultSweep,
    /** Chaos soak + overload sweep through src/chaos (the
     *  bench_soak shape). */
    Soak,
    /** Disaggregated prefill/decode sweep: modes x device counts x
     *  migration-fault scales, every request migrating its KV from a
     *  prefill replica to a decode replica. */
    Disagg,
};

const char *toString(ScenarioKind kind);

/** One entry of the kind registry (--list, nearest-kind errors). */
struct ScenarioKindInfo
{
    ScenarioKind kind;
    const char *name;    ///< the `kind =` spelling
    const char *summary; ///< one-line description for --list
};

/** Every scenario kind, in declaration order. */
const std::vector<ScenarioKindInfo> &scenarioKinds();

/** The known kind name closest to @p name by edit distance. */
std::string nearestScenarioKind(const std::string &name);

/** One swept host-resource variant (`[host <name>]`). */
struct HostVariantSpec
{
    std::string name = "private";
    /** Machine-wide CPU crypto lane pool; 0 = private per-runtime. */
    unsigned shared_crypto_lanes = 0;
    /** Shared host-bridge bandwidth in GB/s; 0 = uncapped. */
    double bridge_gbps = 0;
    /** Per-request bridge latency in microseconds. */
    double bridge_latency_us = 0;
    /**
     * Override of PipeLLM's max speculative lane lead on this host,
     * in milliseconds; negative keeps the pipe preset's default. On a
     * contended pool a deep lead books shared lanes far ahead of
     * everyone's demand traffic, so shared variants keep it small.
     */
    double pipe_max_lane_lead_ms = -1;

    bool operator==(const HostVariantSpec &) const = default;
};

/** `[cluster]`: topology and the mode/replica sweep axes. */
struct ClusterSpec
{
    std::vector<unsigned> devices;
    std::vector<unsigned> devices_quick; ///< empty = same as devices
    std::vector<SystemMode> modes;
    serving::RoutePolicy policy = serving::RoutePolicy::RoundRobin;
    /** Default co-simulation workers (CLI --threads overrides). */
    unsigned threads = 1;

    bool operator==(const ClusterSpec &) const = default;
};

/** `[device]`: the per-device hardware profile. */
struct DeviceSpec
{
    /** Calibrated SystemSpec preset name (h100). */
    std::string spec = "h100";
    /** Functional-crypto sampling cap (bytes actually sealed). */
    unsigned channel_sample_limit = 512;

    bool operator==(const DeviceSpec &) const = default;
};

/** `[engine]`: the per-replica vLLM engine. */
struct EngineSpec
{
    /** ModelConfig preset name (opt13b/opt30b/opt66b/...). */
    std::string model = "opt30b";
    unsigned parallel_sampling = 6;

    bool operator==(const EngineSpec &) const = default;
};

/** `[pipe]`: which PipeLLM configuration preset to use. */
struct PipeSpec
{
    enum class Kind : std::uint8_t
    {
        Kv,      ///< KV-swapping preset (1+1 lanes, deep pipeline)
        Offload, ///< model-offloading preset (10+1 lanes)
    };
    Kind kind = Kind::Kv;

    bool operator==(const PipeSpec &) const = default;
};

const char *toString(PipeSpec::Kind kind);

/** `[trace]`: the arrival workload. */
struct TraceSpec
{
    /** DatasetProfile preset name (sharegpt/alpaca/ultrachat). */
    std::string dataset = "sharegpt";
    /** Length clip override; 0 keeps the dataset default. */
    std::uint32_t max_len = 0;
    std::uint64_t seed = 42;
    /** Poisson rate per device (cluster rate = rate * n_devices). */
    double rate_per_device = 0.8;
    std::size_t requests_per_device = 32;
    std::size_t requests_per_device_quick = 0; ///< 0 = same

    bool operator==(const TraceSpec &) const = default;
};

/**
 * `[faults]`: the scale-1 fault environment and its sweep axis.
 * Fields mirror fault::FaultPlan but stay in human units (seconds,
 * ms, KiB) so dumpScenario() round-trips exactly; the builder does
 * the Tick conversion when it materializes a plan.
 */
struct FaultSpec
{
    std::uint64_t seed = 1;
    /** Scale-1 per-opportunity Bernoulli probabilities. */
    double tag_corruption_rate = 0;
    double copy_stall_rate = 0;
    double lane_fault_rate = 0;
    /** Scale-1 crash/restart arrival rates (events/s per replica). */
    double replica_crash_rate = 0;
    double replica_restart_rate = 0;
    /** SPDM re-attestation + key-exchange cost on rejoin. */
    double spdm_rekey_ms = 10;
    /** Warm-up probe round-tripped before a restart rejoins. */
    double warmup_probe_kib = 256;
    /** Scale-1 per-migration-chunk Bernoulli probabilities. */
    double migration_tag_rate = 0;
    double migration_stall_rate = 0;
    double dest_crash_rate = 0;
    /** Migration stall-watchdog timeout per attempt. */
    double migration_stall_timeout_us = 80;
    /** Consecutive stalls tolerated before local-decode fallback. */
    unsigned max_migration_attempts = 4;
    /** Fault-storm window; every Bernoulli rate is multiplied inside. */
    double storm_start_s = 0;
    double storm_end_s = 0;
    double storm_multiplier = 1;
    /** Restrict injected crashes to these device ids (empty = any). */
    std::vector<unsigned> crash_devices;
    /** Intensity multipliers; 0 rows run with the injector disarmed. */
    std::vector<double> scales{0};
    std::vector<double> scales_quick;
    /** Goodput bucketing for the per-crash dip measurement. */
    double dip_window_s = 2;
    /** Recovery bar as a fraction of pre-crash goodput. */
    double dip_recover_frac = 0.5;

    bool operator==(const FaultSpec &) const = default;
};

/** `[disagg]`: prefill/decode split knobs (kind = disagg only). */
struct DisaggSpec
{
    /** Prefill replicas per cluster; 0 = half, rounded down. */
    unsigned prefill_replicas = 0;
    /** Encrypted KV migration chunk size. */
    double chunk_kib = 256;
    /** Chunks sealed ahead of the verification frontier. */
    unsigned pipeline_depth = 4;

    bool operator==(const DisaggSpec &) const = default;
};

/** `[admission]`: front-end overload protection. */
struct AdmissionSpec
{
    bool shed = false;
    double service_cost_per_sec = 0;
    std::uint64_t max_outstanding_cost = 0;

    bool operator==(const AdmissionSpec &) const = default;
};

/** `[slo]`: deadline stamped per request. */
struct SloSpec
{
    double floor_s = 0;
    double per_token_ms = 0;

    bool operator==(const SloSpec &) const = default;
};

/** One `phase = <requests> <requests_quick> <rate_per_device>`. */
struct SoakPhaseSpec
{
    std::size_t requests = 0;
    std::size_t requests_quick = 0;
    double rate_per_device = 1;

    bool operator==(const SoakPhaseSpec &) const = default;
};

/** `[soak]`: the phased chaos timeline and its recovery analysis. */
struct SoakSpec
{
    std::vector<SoakPhaseSpec> phases;
    double goodput_window_s = 2;
    double recover_frac = 0.5;

    bool operator==(const SoakSpec &) const = default;
};

/** `[overload]`: the admission-off-vs-on rate sweep (Soak part 2). */
struct OverloadSpec
{
    std::vector<double> multipliers;
    std::vector<double> multipliers_quick;
    /** Requests per sweep point; 0 skips the overload sweep. */
    std::size_t requests = 0;
    std::size_t requests_quick = 0;
    /** x1 Poisson rate per device. */
    double rate_per_device = 0.8;
    double slo_floor_s = 1;
    double slo_per_token_ms = 10;
    double service_cost_per_sec = 4000;

    bool operator==(const OverloadSpec &) const = default;
};

/** A fully-parsed scenario: everything one experiment sweep needs. */
struct ScenarioSpec
{
    std::string name;
    ScenarioKind kind = ScenarioKind::ClusterScale;
    /** Primary CSV file name; derived outputs append suffixes. */
    std::string csv;

    ClusterSpec cluster;
    DeviceSpec device;
    EngineSpec engine;
    PipeSpec pipe;
    TraceSpec trace;
    /** Swept host variants; empty = one implicit private variant. */
    std::vector<HostVariantSpec> hosts;
    DisaggSpec disagg;
    FaultSpec faults;
    AdmissionSpec admission;
    SloSpec slo;
    SoakSpec soak;
    OverloadSpec overload;

    /** The replica-count axis for @p quick runs. */
    const std::vector<unsigned> &deviceAxis(bool quick) const;
    /** The fault-scale axis for @p quick runs. */
    const std::vector<double> &scaleAxis(bool quick) const;
    /** Requests per device for @p quick runs. */
    std::size_t requestsPerDevice(bool quick) const;
    /** Host variants, with the implicit private default filled in. */
    std::vector<HostVariantSpec> hostAxis() const;

    /**
     * Semantic validation: empty sweep axes, out-of-range values,
     * fault plans naming absent devices, kind/section mismatches.
     * Returns one actionable message per problem; empty = valid.
     */
    std::vector<std::string> validate() const;

    bool operator==(const ScenarioSpec &) const = default;
};

/** Outcome of parsing a scenario text. */
struct ParseResult
{
    ScenarioSpec spec;
    /** file:line-prefixed parse errors; empty = success. */
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/** Parse scenario text; @p origin labels error messages. */
ParseResult parseScenario(const std::string &text,
                          const std::string &origin = "<string>");

/** Read and parse a scenario file. */
ParseResult loadScenario(const std::string &path);

/**
 * Canonical text form: parseScenario(dumpScenario(s)).spec == s for
 * any spec that passes validation (doubles are printed shortest-
 * round-trip, so no precision is lost).
 */
std::string dumpScenario(const ScenarioSpec &spec);

} // namespace scenario
} // namespace pipellm

#endif // PIPELLM_SCENARIO_SPEC_HH
