#include "scenario/mode.hh"

#include "common/units.hh"
#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"

namespace pipellm {
namespace scenario {

const char *
toString(SystemMode mode)
{
    switch (mode) {
      case SystemMode::Plain:
        return "w/o CC";
      case SystemMode::Cc:
        return "CC";
      case SystemMode::Cc4t:
        return "CC-4t";
      case SystemMode::Pipe:
        return "PipeLLM";
      case SystemMode::Pipe0:
        return "PipeLLM-0";
    }
    return "?";
}

const char *
keyOf(SystemMode mode)
{
    switch (mode) {
      case SystemMode::Plain:
        return "Plain";
      case SystemMode::Cc:
        return "Cc";
      case SystemMode::Cc4t:
        return "Cc4t";
      case SystemMode::Pipe:
        return "Pipe";
      case SystemMode::Pipe0:
        return "Pipe0";
    }
    return "?";
}

std::optional<SystemMode>
parseSystemMode(const std::string &name)
{
    for (SystemMode mode :
         {SystemMode::Plain, SystemMode::Cc, SystemMode::Cc4t,
          SystemMode::Pipe, SystemMode::Pipe0}) {
        if (name == keyOf(mode))
            return mode;
    }
    return std::nullopt;
}

core::PipeLlmConfig
offloadPipeConfig(const llm::ModelConfig &model)
{
    core::PipeLlmConfig cfg;
    // Model offloading must out-encrypt the 40 GB/s copy path, so
    // PipeLLM dedicates multiple CPU threads (§7.2; the paper's VM
    // has 16 vCPUs).
    cfg.enc_lanes = 10;
    cfg.dec_lanes = 1;
    cfg.pipeline_depth = 12;
    cfg.max_pipeline_bytes = 32 * GiB;
    // Layer chunks are GB-sized (hundreds of ms per lane); the stable
    // repetitive plan justifies booking the lanes far ahead.
    cfg.max_lane_lead = seconds(1);
    cfg.classifier.layer_param_bytes = model.layerParamBytes();
    return cfg;
}

core::PipeLlmConfig
kvPipeConfig(std::uint64_t kv_unit_bytes)
{
    core::PipeLlmConfig cfg;
    cfg.enc_lanes = 1;
    cfg.dec_lanes = 1;
    // The pipeline must cover whole preempted groups (hundreds of KV
    // blocks) so they pre-encrypt during the out->in window.
    cfg.pipeline_depth = 512;
    cfg.max_pipeline_bytes = 16 * GiB;
    cfg.classifier.kv_unit_bytes = kv_unit_bytes;
    return cfg;
}

std::unique_ptr<runtime::RuntimeApi>
makeRuntime(SystemMode mode, runtime::Platform &platform,
            const core::PipeLlmConfig &pipe_cfg,
            runtime::DeviceId device)
{
    switch (mode) {
      case SystemMode::Plain:
        return std::make_unique<runtime::PlainRuntime>(platform,
                                                       device);
      case SystemMode::Cc:
        return std::make_unique<runtime::CcRuntime>(platform, 1,
                                                    device);
      case SystemMode::Cc4t:
        return std::make_unique<runtime::CcRuntime>(platform, 4,
                                                    device);
      case SystemMode::Pipe:
        return std::make_unique<core::PipeLlmRuntime>(platform,
                                                      pipe_cfg,
                                                      device);
      case SystemMode::Pipe0: {
        auto cfg = pipe_cfg;
        cfg.predictor.sabotage_sequence = true;
        return std::make_unique<core::PipeLlmRuntime>(platform, cfg,
                                                      device);
      }
    }
    return nullptr;
}

} // namespace scenario
} // namespace pipellm
