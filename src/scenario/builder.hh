/**
 * @file
 * ScenarioBuilder: materialize simulator objects from a ScenarioSpec.
 *
 * The builder is the one place scenario vocabulary (preset names,
 * human units, sweep axes) turns into simulator types — Platform,
 * ClusterRouter, TraceGenerator, FaultPlan, SoakPlan. Each method
 * reproduces the construction the hand-written bench mains used to
 * perform, in the same order with the same expressions, which is what
 * keeps regenerated CSVs byte-identical to the committed ones; the
 * builder-equivalence tests pin that down per figure.
 */

#ifndef PIPELLM_SCENARIO_BUILDER_HH
#define PIPELLM_SCENARIO_BUILDER_HH

#include <memory>

#include "scenario/spec.hh"
#include "serving/cluster.hh"
#include "chaos/chaos.hh"
#include "trace/generator.hh"

namespace pipellm {
namespace scenario {

/** One materialized cluster: the router plus the Platform it serves
 *  on (the router holds a reference, so ownership rides together). */
struct BuiltCluster
{
    std::unique_ptr<runtime::Platform> platform;
    std::unique_ptr<serving::ClusterRouter> router;
};

class ScenarioBuilder
{
  public:
    /** @p spec must outlive the builder and pass validate(). */
    explicit ScenarioBuilder(const ScenarioSpec &spec);

    const ScenarioSpec &spec() const { return spec_; }

    /** The calibrated hardware profile named by [device] spec. */
    gpu::SystemSpec systemSpec() const;

    /** Functional-crypto sampling from [device]. */
    crypto::ChannelConfig channelConfig() const;

    /** The ModelConfig preset named by [engine] model. */
    llm::ModelConfig model() const;

    /** The DatasetProfile named by [trace], with the clip applied. */
    trace::DatasetProfile datasetProfile() const;

    /** HostResources for one [host] variant (GB/s -> bytes/s). */
    runtime::HostResources hostResources(
        const HostVariantSpec &host) const;

    /**
     * The PipeLLM configuration preset from [pipe], with @p host 's
     * lane-lead override applied (contended pools keep speculation
     * just-in-time).
     */
    core::PipeLlmConfig pipeConfig(const HostVariantSpec &host) const;

    /** ClusterConfig with the engine/policy/admission knobs set;
     *  @p threads overrides [cluster] threads (wall-clock only). */
    serving::ClusterConfig clusterConfig(unsigned threads) const;

    /**
     * The [faults] plan with every rate multiplied by @p scale
     * (human units converted to ticks/bytes here, not in the spec,
     * so scenario text round-trips exactly).
     */
    fault::FaultPlan scaledPlan(double scale) const;

    /** The Poisson arrival trace for an @p n_devices cluster. */
    trace::Trace poissonTrace(std::size_t n_requests,
                              unsigned n_devices) const;

    /**
     * Materialize one sweep point: Platform on @p host, faults armed
     * when @p fault_scale > 0, one @p mode replica per device behind
     * the router.
     */
    BuiltCluster build(SystemMode mode, unsigned n_devices,
                       const HostVariantSpec &host, double fault_scale,
                       unsigned threads) const;

    /** The chaos SoakPlan for a kind=soak scenario. */
    chaos::SoakPlan soakPlan(bool quick) const;

    /**
     * The [overload] sweep point at @p multiplier: faults disarmed,
     * one phase at the swept rate, the tight overload SLO, shedding
     * per @p shed.
     */
    chaos::SoakPlan overloadPlan(bool quick, double multiplier,
                                 bool shed) const;

  private:
    const ScenarioSpec &spec_;
};

} // namespace scenario
} // namespace pipellm

#endif // PIPELLM_SCENARIO_BUILDER_HH
