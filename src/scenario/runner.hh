/**
 * @file
 * SweepRunner: expand a scenario's sweep matrix and emit CSV rows.
 *
 * runScenario() is the engine behind the pipellm_run driver and the
 * thin legacy bench wrappers: it walks the axes a ScenarioSpec
 * declares (host variants x modes x replica counts, fault scales,
 * overload multipliers), materializes each point through
 * ScenarioBuilder, and writes the same CSV files — byte-identical
 * rows — the hand-written bench mains used to produce. Progress goes
 * through a caller-supplied sink, never stdout, so the library stays
 * inside the src/ logging discipline; binaries attach a printing
 * sink, tests attach nothing.
 */

#ifndef PIPELLM_SCENARIO_RUNNER_HH
#define PIPELLM_SCENARIO_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "scenario/spec.hh"

namespace pipellm {
namespace scenario {

/** Knobs the driver CLI exposes on top of a scenario file. */
struct RunOptions
{
    /** Use the *_quick sweep axes (CI smoke). */
    bool quick = false;
    /**
     * Co-simulation worker override: negative keeps the scenario's
     * [cluster] threads, 0 = hardware concurrency. A wall-clock knob
     * only — every value produces byte-identical CSVs.
     */
    int threads = -1;
    /** Directory the CSV files land in (created if needed). */
    std::string out_dir = "bench_results";
    /** Sink for one-line progress messages; null = silent. */
    std::function<void(const std::string &)> progress;
};

/** What a scenario run produced. */
struct RunSummary
{
    /** CSV files written, in emission order. */
    std::vector<std::string> csv_paths;
    /** Data rows written across all CSVs (headers excluded). */
    std::size_t rows = 0;
    /** Cluster/soak executions performed. */
    std::size_t runs = 0;
};

/**
 * Expand and run @p spec 's sweep matrix, writing CSVs under
 * @p opts.out_dir. The spec must pass validate(); invariant failures
 * mid-sweep (integrity faults on a fault-free run, an unrecovered
 * soak) trap via PIPELLM_ASSERT exactly as the legacy benches did.
 */
RunSummary runScenario(const ScenarioSpec &spec,
                       const RunOptions &opts);

} // namespace scenario
} // namespace pipellm

#endif // PIPELLM_SCENARIO_RUNNER_HH
