#include "scenario/spec.hh"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace pipellm {
namespace scenario {

namespace {

std::string
trim(const std::string &s)
{
    auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
tokens(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

/** Shortest text that round-trips the double exactly. */
std::string
fmtDouble(double v)
{
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    PIPELLM_ASSERT(res.ec == std::errc(), "double format failed");
    return std::string(buf, res.ptr);
}

bool
parseDoubleValue(const std::string &s, double &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto res = std::from_chars(first, last, out);
    return res.ec == std::errc() && res.ptr == last;
}

bool
parseU64Value(const std::string &s, std::uint64_t &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto res = std::from_chars(first, last, out);
    return res.ec == std::errc() && res.ptr == last;
}

/** Parse state threaded through the per-section key handlers. */
struct Ctx
{
    ScenarioSpec spec;
    std::vector<std::string> errors;
    std::string origin;
    int line = 0;
    /** Host variant the current `[host <name>]` section fills. */
    HostVariantSpec *host = nullptr;

    template <typename... Args>
    void
    err(const Args &...args)
    {
        errors.push_back(logConcat(origin, ":", line, ": ", args...));
    }

    void
    badValue(const std::string &key, const std::string &value,
             const char *expect)
    {
        err("bad value '", value, "' for ", key, " (expected ",
            expect, ")");
    }

    bool
    getDouble(const std::string &key, const std::string &value,
              double &out)
    {
        if (parseDoubleValue(value, out))
            return true;
        badValue(key, value, "a number");
        return false;
    }

    bool
    getU64(const std::string &key, const std::string &value,
           std::uint64_t &out)
    {
        if (parseU64Value(value, out))
            return true;
        badValue(key, value, "a non-negative integer");
        return false;
    }

    bool
    getUnsigned(const std::string &key, const std::string &value,
                unsigned &out)
    {
        std::uint64_t wide = 0;
        if (parseU64Value(value, wide) && wide <= 0xffffffffull) {
            out = unsigned(wide);
            return true;
        }
        badValue(key, value, "a non-negative integer");
        return false;
    }

    bool
    getU32(const std::string &key, const std::string &value,
           std::uint32_t &out)
    {
        unsigned u = 0;
        if (!getUnsigned(key, value, u))
            return false;
        out = u;
        return true;
    }

    bool
    getSize(const std::string &key, const std::string &value,
            std::size_t &out)
    {
        std::uint64_t wide = 0;
        if (!getU64(key, value, wide))
            return false;
        out = std::size_t(wide);
        return true;
    }

    bool
    getBool(const std::string &key, const std::string &value,
            bool &out)
    {
        if (value == "on" || value == "true" || value == "1") {
            out = true;
            return true;
        }
        if (value == "off" || value == "false" || value == "0") {
            out = false;
            return true;
        }
        badValue(key, value, "on/off");
        return false;
    }

    bool
    getDoubleList(const std::string &key, const std::string &value,
                  std::vector<double> &out)
    {
        std::vector<double> parsed;
        for (const auto &tok : tokens(value)) {
            double v = 0;
            if (!parseDoubleValue(tok, v)) {
                badValue(key, tok, "a list of numbers");
                return false;
            }
            parsed.push_back(v);
        }
        out = std::move(parsed);
        return true;
    }

    bool
    getUnsignedList(const std::string &key, const std::string &value,
                    std::vector<unsigned> &out)
    {
        std::vector<unsigned> parsed;
        for (const auto &tok : tokens(value)) {
            std::uint64_t v = 0;
            if (!parseU64Value(tok, v) || v > 0xffffffffull) {
                badValue(key, tok,
                         "a list of non-negative integers");
                return false;
            }
            parsed.push_back(unsigned(v));
        }
        out = std::move(parsed);
        return true;
    }
};

/** Levenshtein distance, for did-you-mean kind suggestions. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t sub = diag + (a[i - 1] != b[j - 1]);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
        }
    }
    return row[b.size()];
}

std::string
joinKindNames()
{
    std::string out;
    for (const auto &k : scenarioKinds()) {
        if (!out.empty())
            out += "/";
        out += k.name;
    }
    return out;
}

void
scenarioKey(Ctx &c, const std::string &key, const std::string &value)
{
    if (key == "name") {
        c.spec.name = value;
    } else if (key == "kind") {
        bool found = false;
        for (const auto &k : scenarioKinds()) {
            if (value == k.name) {
                c.spec.kind = k.kind;
                found = true;
                break;
            }
        }
        if (!found) {
            c.err("unknown kind '", value, "' (known: ",
                  joinKindNames(), "; did you mean '",
                  nearestScenarioKind(value), "'?)");
        }
    } else if (key == "csv") {
        c.spec.csv = value;
    } else {
        c.err("unknown key '", key,
              "' in [scenario] (known: name, kind, csv)");
    }
}

void
clusterKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &cl = c.spec.cluster;
    if (key == "devices") {
        c.getUnsignedList(key, value, cl.devices);
    } else if (key == "devices_quick") {
        c.getUnsignedList(key, value, cl.devices_quick);
    } else if (key == "modes") {
        std::vector<SystemMode> modes;
        bool ok = true;
        for (const auto &tok : tokens(value)) {
            auto mode = parseSystemMode(tok);
            if (!mode) {
                c.badValue(key, tok, "Plain/Cc/Cc4t/Pipe/Pipe0");
                ok = false;
                break;
            }
            modes.push_back(*mode);
        }
        if (ok)
            cl.modes = std::move(modes);
    } else if (key == "policy") {
        if (value == "round_robin")
            cl.policy = serving::RoutePolicy::RoundRobin;
        else if (value == "least_loaded")
            cl.policy = serving::RoutePolicy::LeastLoaded;
        else
            c.badValue(key, value, "round_robin/least_loaded");
    } else if (key == "threads") {
        c.getUnsigned(key, value, cl.threads);
    } else {
        c.err("unknown key '", key,
              "' in [cluster] (known: devices, devices_quick, modes, "
              "policy, threads)");
    }
}

void
deviceKey(Ctx &c, const std::string &key, const std::string &value)
{
    if (key == "spec")
        c.spec.device.spec = value;
    else if (key == "channel_sample_limit")
        c.getUnsigned(key, value, c.spec.device.channel_sample_limit);
    else
        c.err("unknown key '", key,
              "' in [device] (known: spec, channel_sample_limit)");
}

void
engineKey(Ctx &c, const std::string &key, const std::string &value)
{
    if (key == "model")
        c.spec.engine.model = value;
    else if (key == "parallel_sampling")
        c.getUnsigned(key, value, c.spec.engine.parallel_sampling);
    else
        c.err("unknown key '", key,
              "' in [engine] (known: model, parallel_sampling)");
}

void
pipeKey(Ctx &c, const std::string &key, const std::string &value)
{
    if (key == "kind") {
        if (value == "kv")
            c.spec.pipe.kind = PipeSpec::Kind::Kv;
        else if (value == "offload")
            c.spec.pipe.kind = PipeSpec::Kind::Offload;
        else
            c.badValue(key, value, "kv/offload");
    } else {
        c.err("unknown key '", key, "' in [pipe] (known: kind)");
    }
}

void
traceKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &t = c.spec.trace;
    if (key == "dataset")
        t.dataset = value;
    else if (key == "max_len")
        c.getU32(key, value, t.max_len);
    else if (key == "seed")
        c.getU64(key, value, t.seed);
    else if (key == "rate_per_device")
        c.getDouble(key, value, t.rate_per_device);
    else if (key == "requests_per_device")
        c.getSize(key, value, t.requests_per_device);
    else if (key == "requests_per_device_quick")
        c.getSize(key, value, t.requests_per_device_quick);
    else
        c.err("unknown key '", key,
              "' in [trace] (known: dataset, max_len, seed, "
              "rate_per_device, requests_per_device, "
              "requests_per_device_quick)");
}

void
hostKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &h = *c.host;
    if (key == "shared_crypto_lanes")
        c.getUnsigned(key, value, h.shared_crypto_lanes);
    else if (key == "bridge_gbps")
        c.getDouble(key, value, h.bridge_gbps);
    else if (key == "bridge_latency_us")
        c.getDouble(key, value, h.bridge_latency_us);
    else if (key == "pipe_max_lane_lead_ms")
        c.getDouble(key, value, h.pipe_max_lane_lead_ms);
    else
        c.err("unknown key '", key,
              "' in [host ", h.name,
              "] (known: shared_crypto_lanes, bridge_gbps, "
              "bridge_latency_us, pipe_max_lane_lead_ms)");
}

void
faultsKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &f = c.spec.faults;
    if (key == "seed")
        c.getU64(key, value, f.seed);
    else if (key == "tag_corruption_rate")
        c.getDouble(key, value, f.tag_corruption_rate);
    else if (key == "copy_stall_rate")
        c.getDouble(key, value, f.copy_stall_rate);
    else if (key == "lane_fault_rate")
        c.getDouble(key, value, f.lane_fault_rate);
    else if (key == "replica_crash_rate")
        c.getDouble(key, value, f.replica_crash_rate);
    else if (key == "replica_restart_rate")
        c.getDouble(key, value, f.replica_restart_rate);
    else if (key == "spdm_rekey_ms")
        c.getDouble(key, value, f.spdm_rekey_ms);
    else if (key == "warmup_probe_kib")
        c.getDouble(key, value, f.warmup_probe_kib);
    else if (key == "migration_tag_rate")
        c.getDouble(key, value, f.migration_tag_rate);
    else if (key == "migration_stall_rate")
        c.getDouble(key, value, f.migration_stall_rate);
    else if (key == "dest_crash_rate")
        c.getDouble(key, value, f.dest_crash_rate);
    else if (key == "migration_stall_timeout_us")
        c.getDouble(key, value, f.migration_stall_timeout_us);
    else if (key == "max_migration_attempts")
        c.getUnsigned(key, value, f.max_migration_attempts);
    else if (key == "storm_start_s")
        c.getDouble(key, value, f.storm_start_s);
    else if (key == "storm_end_s")
        c.getDouble(key, value, f.storm_end_s);
    else if (key == "storm_multiplier")
        c.getDouble(key, value, f.storm_multiplier);
    else if (key == "crash_devices")
        c.getUnsignedList(key, value, f.crash_devices);
    else if (key == "scales")
        c.getDoubleList(key, value, f.scales);
    else if (key == "scales_quick")
        c.getDoubleList(key, value, f.scales_quick);
    else if (key == "dip_window_s")
        c.getDouble(key, value, f.dip_window_s);
    else if (key == "dip_recover_frac")
        c.getDouble(key, value, f.dip_recover_frac);
    else
        c.err("unknown key '", key,
              "' in [faults] (known: seed, tag_corruption_rate, "
              "copy_stall_rate, lane_fault_rate, replica_crash_rate, "
              "replica_restart_rate, spdm_rekey_ms, warmup_probe_kib, "
              "migration_tag_rate, migration_stall_rate, "
              "dest_crash_rate, migration_stall_timeout_us, "
              "max_migration_attempts, storm_start_s, storm_end_s, "
              "storm_multiplier, crash_devices, scales, scales_quick, "
              "dip_window_s, dip_recover_frac)");
}

void
disaggKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &d = c.spec.disagg;
    if (key == "prefill_replicas")
        c.getUnsigned(key, value, d.prefill_replicas);
    else if (key == "chunk_kib")
        c.getDouble(key, value, d.chunk_kib);
    else if (key == "pipeline_depth")
        c.getUnsigned(key, value, d.pipeline_depth);
    else
        c.err("unknown key '", key,
              "' in [disagg] (known: prefill_replicas, chunk_kib, "
              "pipeline_depth)");
}

void
admissionKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &a = c.spec.admission;
    if (key == "shed")
        c.getBool(key, value, a.shed);
    else if (key == "service_cost_per_sec")
        c.getDouble(key, value, a.service_cost_per_sec);
    else if (key == "max_outstanding_cost")
        c.getU64(key, value, a.max_outstanding_cost);
    else
        c.err("unknown key '", key,
              "' in [admission] (known: shed, service_cost_per_sec, "
              "max_outstanding_cost)");
}

void
sloKey(Ctx &c, const std::string &key, const std::string &value)
{
    if (key == "floor_s")
        c.getDouble(key, value, c.spec.slo.floor_s);
    else if (key == "per_token_ms")
        c.getDouble(key, value, c.spec.slo.per_token_ms);
    else
        c.err("unknown key '", key,
              "' in [slo] (known: floor_s, per_token_ms)");
}

void
soakKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &s = c.spec.soak;
    if (key == "phase") {
        auto parts = tokens(value);
        SoakPhaseSpec phase;
        std::uint64_t req = 0;
        std::uint64_t req_quick = 0;
        if (parts.size() == 3 && parseU64Value(parts[0], req) &&
            parseU64Value(parts[1], req_quick) &&
            parseDoubleValue(parts[2], phase.rate_per_device)) {
            phase.requests = std::size_t(req);
            phase.requests_quick = std::size_t(req_quick);
            s.phases.push_back(phase);
        } else {
            c.badValue(key, value,
                       "'<requests> <requests_quick> "
                       "<rate_per_device>'");
        }
    } else if (key == "goodput_window_s") {
        c.getDouble(key, value, s.goodput_window_s);
    } else if (key == "recover_frac") {
        c.getDouble(key, value, s.recover_frac);
    } else {
        c.err("unknown key '", key,
              "' in [soak] (known: phase, goodput_window_s, "
              "recover_frac)");
    }
}

void
overloadKey(Ctx &c, const std::string &key, const std::string &value)
{
    auto &o = c.spec.overload;
    if (key == "multipliers")
        c.getDoubleList(key, value, o.multipliers);
    else if (key == "multipliers_quick")
        c.getDoubleList(key, value, o.multipliers_quick);
    else if (key == "requests")
        c.getSize(key, value, o.requests);
    else if (key == "requests_quick")
        c.getSize(key, value, o.requests_quick);
    else if (key == "rate_per_device")
        c.getDouble(key, value, o.rate_per_device);
    else if (key == "slo_floor_s")
        c.getDouble(key, value, o.slo_floor_s);
    else if (key == "slo_per_token_ms")
        c.getDouble(key, value, o.slo_per_token_ms);
    else if (key == "service_cost_per_sec")
        c.getDouble(key, value, o.service_cost_per_sec);
    else
        c.err("unknown key '", key,
              "' in [overload] (known: multipliers, "
              "multipliers_quick, requests, requests_quick, "
              "rate_per_device, slo_floor_s, slo_per_token_ms, "
              "service_cost_per_sec)");
}

using KeyHandler = void (*)(Ctx &, const std::string &,
                            const std::string &);

KeyHandler
sectionHandler(const std::string &section)
{
    if (section == "scenario")
        return scenarioKey;
    if (section == "cluster")
        return clusterKey;
    if (section == "device")
        return deviceKey;
    if (section == "engine")
        return engineKey;
    if (section == "pipe")
        return pipeKey;
    if (section == "trace")
        return traceKey;
    if (section == "disagg")
        return disaggKey;
    if (section == "faults")
        return faultsKey;
    if (section == "admission")
        return admissionKey;
    if (section == "slo")
        return sloKey;
    if (section == "soak")
        return soakKey;
    if (section == "overload")
        return overloadKey;
    return nullptr;
}

const char *const knownModels[] = {"opt13b", "opt30b", "opt66b",
                                   "opt175b", "opt175b-int4",
                                   "llama7b"};
const char *const knownDatasets[] = {"sharegpt", "alpaca",
                                     "ultrachat"};
const char *const knownSpecs[] = {"h100"};

template <std::size_t N>
bool
isKnown(const std::string &name, const char *const (&table)[N])
{
    return std::find_if(std::begin(table), std::end(table),
                        [&](const char *k) { return name == k; }) !=
           std::end(table);
}

template <std::size_t N>
std::string
joinKnown(const char *const (&table)[N])
{
    std::string out;
    for (const char *k : table) {
        if (!out.empty())
            out += "/";
        out += k;
    }
    return out;
}

} // namespace

const char *
toString(ScenarioKind kind)
{
    switch (kind) {
      case ScenarioKind::ClusterScale:
        return "cluster_scale";
      case ScenarioKind::FaultSweep:
        return "fault_sweep";
      case ScenarioKind::Soak:
        return "soak";
      case ScenarioKind::Disagg:
        return "disagg";
    }
    return "?";
}

const std::vector<ScenarioKindInfo> &
scenarioKinds()
{
    static const std::vector<ScenarioKindInfo> kinds = {
        {ScenarioKind::ClusterScale, "cluster_scale",
         "replica-scaling sweep: host variants x modes x devices"},
        {ScenarioKind::FaultSweep, "fault_sweep",
         "fault-intensity sweep: modes x devices x fault scales"},
        {ScenarioKind::Soak, "soak",
         "chaos soak + overload sweep through the chaos harness"},
        {ScenarioKind::Disagg, "disagg",
         "disaggregated prefill/decode sweep with encrypted KV "
         "migration"},
    };
    return kinds;
}

std::string
nearestScenarioKind(const std::string &name)
{
    const ScenarioKindInfo *best = nullptr;
    std::size_t best_dist = 0;
    for (const auto &k : scenarioKinds()) {
        std::size_t d = editDistance(name, k.name);
        if (!best || d < best_dist) {
            best = &k;
            best_dist = d;
        }
    }
    return best->name;
}

const char *
toString(PipeSpec::Kind kind)
{
    switch (kind) {
      case PipeSpec::Kind::Kv:
        return "kv";
      case PipeSpec::Kind::Offload:
        return "offload";
    }
    return "?";
}

const std::vector<unsigned> &
ScenarioSpec::deviceAxis(bool quick) const
{
    if (quick && !cluster.devices_quick.empty())
        return cluster.devices_quick;
    return cluster.devices;
}

const std::vector<double> &
ScenarioSpec::scaleAxis(bool quick) const
{
    if (quick && !faults.scales_quick.empty())
        return faults.scales_quick;
    return faults.scales;
}

std::size_t
ScenarioSpec::requestsPerDevice(bool quick) const
{
    if (quick && trace.requests_per_device_quick > 0)
        return trace.requests_per_device_quick;
    return trace.requests_per_device;
}

std::vector<HostVariantSpec>
ScenarioSpec::hostAxis() const
{
    if (!hosts.empty())
        return hosts;
    return {HostVariantSpec{}};
}

ParseResult
parseScenario(const std::string &text, const std::string &origin)
{
    Ctx c;
    c.origin = origin;
    KeyHandler handler = nullptr;
    std::string section;

    std::istringstream is(text);
    std::string raw;
    while (std::getline(is, raw)) {
        ++c.line;
        auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        std::string line = trim(raw);
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']') {
                c.err("malformed section header '", line, "'");
                handler = nullptr;
                continue;
            }
            auto inner = trim(line.substr(1, line.size() - 2));
            auto parts = tokens(inner);
            c.host = nullptr;
            if (parts.size() == 2 && parts[0] == "host") {
                c.spec.hosts.push_back(HostVariantSpec{});
                c.spec.hosts.back().name = parts[1];
                c.host = &c.spec.hosts.back();
                handler = hostKey;
                section = inner;
            } else if (parts.size() == 1 &&
                       (handler = sectionHandler(parts[0]))) {
                section = parts[0];
            } else {
                c.err("unknown section [", inner,
                      "] (known: scenario, cluster, device, engine, "
                      "pipe, trace, host <name>, disagg, faults, "
                      "admission, slo, soak, overload)");
                handler = nullptr;
            }
            continue;
        }

        auto eq = line.find('=');
        if (eq == std::string::npos) {
            c.err("expected 'key = value', got '", line, "'");
            continue;
        }
        if (!handler) {
            c.err("'", line, "' outside any known section");
            continue;
        }
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        handler(c, key, value);
    }

    if (c.spec.csv.empty() && !c.spec.name.empty())
        c.spec.csv = c.spec.name + ".csv";

    ParseResult result;
    result.spec = std::move(c.spec);
    result.errors = std::move(c.errors);
    return result;
}

ParseResult
loadScenario(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        ParseResult bad;
        bad.errors.push_back(path + ": cannot open scenario file");
        return bad;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseScenario(text.str(), path);
}

std::string
dumpScenario(const ScenarioSpec &spec)
{
    std::ostringstream os;
    auto list = [&](const char *key, const auto &values) {
        if (values.empty())
            return;
        os << key << " =";
        for (const auto &v : values)
            os << " " << v;
        os << "\n";
    };

    os << "[scenario]\n";
    os << "name = " << spec.name << "\n";
    os << "kind = " << toString(spec.kind) << "\n";
    os << "csv = " << spec.csv << "\n";

    os << "\n[cluster]\n";
    list("devices", spec.cluster.devices);
    list("devices_quick", spec.cluster.devices_quick);
    if (!spec.cluster.modes.empty()) {
        os << "modes =";
        for (auto m : spec.cluster.modes)
            os << " " << keyOf(m);
        os << "\n";
    }
    os << "policy = "
       << (spec.cluster.policy == serving::RoutePolicy::RoundRobin
               ? "round_robin"
               : "least_loaded")
       << "\n";
    os << "threads = " << spec.cluster.threads << "\n";

    os << "\n[device]\n";
    os << "spec = " << spec.device.spec << "\n";
    os << "channel_sample_limit = " << spec.device.channel_sample_limit
       << "\n";

    os << "\n[engine]\n";
    os << "model = " << spec.engine.model << "\n";
    os << "parallel_sampling = " << spec.engine.parallel_sampling
       << "\n";

    os << "\n[pipe]\n";
    os << "kind = " << toString(spec.pipe.kind) << "\n";

    os << "\n[trace]\n";
    os << "dataset = " << spec.trace.dataset << "\n";
    os << "max_len = " << spec.trace.max_len << "\n";
    os << "seed = " << spec.trace.seed << "\n";
    os << "rate_per_device = " << fmtDouble(spec.trace.rate_per_device)
       << "\n";
    os << "requests_per_device = " << spec.trace.requests_per_device
       << "\n";
    os << "requests_per_device_quick = "
       << spec.trace.requests_per_device_quick << "\n";

    for (const auto &h : spec.hosts) {
        os << "\n[host " << h.name << "]\n";
        os << "shared_crypto_lanes = " << h.shared_crypto_lanes
           << "\n";
        os << "bridge_gbps = " << fmtDouble(h.bridge_gbps) << "\n";
        os << "bridge_latency_us = " << fmtDouble(h.bridge_latency_us)
           << "\n";
        os << "pipe_max_lane_lead_ms = "
           << fmtDouble(h.pipe_max_lane_lead_ms) << "\n";
    }

    if (spec.disagg != DisaggSpec{} ||
        spec.kind == ScenarioKind::Disagg) {
        os << "\n[disagg]\n";
        os << "prefill_replicas = " << spec.disagg.prefill_replicas
           << "\n";
        os << "chunk_kib = " << fmtDouble(spec.disagg.chunk_kib)
           << "\n";
        os << "pipeline_depth = " << spec.disagg.pipeline_depth
           << "\n";
    }

    if (spec.faults != FaultSpec{}) {
        const auto &f = spec.faults;
        os << "\n[faults]\n";
        os << "seed = " << f.seed << "\n";
        os << "tag_corruption_rate = "
           << fmtDouble(f.tag_corruption_rate) << "\n";
        os << "copy_stall_rate = " << fmtDouble(f.copy_stall_rate)
           << "\n";
        os << "lane_fault_rate = " << fmtDouble(f.lane_fault_rate)
           << "\n";
        os << "replica_crash_rate = "
           << fmtDouble(f.replica_crash_rate) << "\n";
        os << "replica_restart_rate = "
           << fmtDouble(f.replica_restart_rate) << "\n";
        os << "spdm_rekey_ms = " << fmtDouble(f.spdm_rekey_ms)
           << "\n";
        os << "warmup_probe_kib = " << fmtDouble(f.warmup_probe_kib)
           << "\n";
        os << "migration_tag_rate = "
           << fmtDouble(f.migration_tag_rate) << "\n";
        os << "migration_stall_rate = "
           << fmtDouble(f.migration_stall_rate) << "\n";
        os << "dest_crash_rate = " << fmtDouble(f.dest_crash_rate)
           << "\n";
        os << "migration_stall_timeout_us = "
           << fmtDouble(f.migration_stall_timeout_us) << "\n";
        os << "max_migration_attempts = " << f.max_migration_attempts
           << "\n";
        os << "storm_start_s = " << fmtDouble(f.storm_start_s) << "\n";
        os << "storm_end_s = " << fmtDouble(f.storm_end_s) << "\n";
        os << "storm_multiplier = " << fmtDouble(f.storm_multiplier)
           << "\n";
        list("crash_devices", f.crash_devices);
        if (!f.scales.empty()) {
            os << "scales =";
            for (double s : f.scales)
                os << " " << fmtDouble(s);
            os << "\n";
        }
        if (!f.scales_quick.empty()) {
            os << "scales_quick =";
            for (double s : f.scales_quick)
                os << " " << fmtDouble(s);
            os << "\n";
        }
        os << "dip_window_s = " << fmtDouble(f.dip_window_s) << "\n";
        os << "dip_recover_frac = " << fmtDouble(f.dip_recover_frac)
           << "\n";
    }

    if (spec.admission != AdmissionSpec{}) {
        os << "\n[admission]\n";
        os << "shed = " << (spec.admission.shed ? "on" : "off")
           << "\n";
        os << "service_cost_per_sec = "
           << fmtDouble(spec.admission.service_cost_per_sec) << "\n";
        os << "max_outstanding_cost = "
           << spec.admission.max_outstanding_cost << "\n";
    }

    if (spec.slo != SloSpec{}) {
        os << "\n[slo]\n";
        os << "floor_s = " << fmtDouble(spec.slo.floor_s) << "\n";
        os << "per_token_ms = " << fmtDouble(spec.slo.per_token_ms)
           << "\n";
    }

    if (spec.soak != SoakSpec{}) {
        os << "\n[soak]\n";
        for (const auto &p : spec.soak.phases) {
            os << "phase = " << p.requests << " " << p.requests_quick
               << " " << fmtDouble(p.rate_per_device) << "\n";
        }
        os << "goodput_window_s = "
           << fmtDouble(spec.soak.goodput_window_s) << "\n";
        os << "recover_frac = " << fmtDouble(spec.soak.recover_frac)
           << "\n";
    }

    if (spec.overload != OverloadSpec{}) {
        const auto &o = spec.overload;
        os << "\n[overload]\n";
        if (!o.multipliers.empty()) {
            os << "multipliers =";
            for (double m : o.multipliers)
                os << " " << fmtDouble(m);
            os << "\n";
        }
        if (!o.multipliers_quick.empty()) {
            os << "multipliers_quick =";
            for (double m : o.multipliers_quick)
                os << " " << fmtDouble(m);
            os << "\n";
        }
        os << "requests = " << o.requests << "\n";
        os << "requests_quick = " << o.requests_quick << "\n";
        os << "rate_per_device = " << fmtDouble(o.rate_per_device)
           << "\n";
        os << "slo_floor_s = " << fmtDouble(o.slo_floor_s) << "\n";
        os << "slo_per_token_ms = " << fmtDouble(o.slo_per_token_ms)
           << "\n";
        os << "service_cost_per_sec = "
           << fmtDouble(o.service_cost_per_sec) << "\n";
    }

    return os.str();
}

std::vector<std::string>
ScenarioSpec::validate() const
{
    std::vector<std::string> errors;
    auto err = [&](auto... args) {
        errors.push_back(logConcat(args...));
    };

    if (name.empty())
        err("[scenario] name is empty: every scenario needs a name");
    if (csv.empty())
        err("[scenario] csv is empty: name the output CSV file");

    // --- cluster ---
    if (cluster.devices.empty()) {
        err("[cluster] devices is empty: list at least one replica "
            "count (e.g. 'devices = 1 2 4')");
    }
    unsigned max_devices = 0;
    for (unsigned n : cluster.devices) {
        if (n == 0)
            err("[cluster] devices contains 0: a cluster needs at "
                "least one replica");
        max_devices = std::max(max_devices, n);
    }
    for (unsigned n : cluster.devices_quick) {
        if (n == 0)
            err("[cluster] devices_quick contains 0: a cluster needs "
                "at least one replica");
        if (n > max_devices)
            err("[cluster] devices_quick names ", n,
                " replicas but the full axis tops out at ",
                max_devices, ": quick must be a scaled-down run");
    }
    if (cluster.modes.empty())
        err("[cluster] modes is empty: list at least one system "
            "(Plain/Cc/Cc4t/Pipe/Pipe0)");
    if (cluster.threads > max_devices && max_devices > 0) {
        err("[cluster] threads (", cluster.threads,
            ") exceeds the largest replica count (", max_devices,
            "): the sharded schedule caps useful workers at one per "
            "replica");
    }

    // --- device / engine / pipe / trace presets ---
    if (!isKnown(device.spec, knownSpecs))
        err("[device] spec '", device.spec, "' is unknown (known: ",
            joinKnown(knownSpecs), ")");
    if (device.channel_sample_limit == 0)
        err("[device] channel_sample_limit must be positive: 0 would "
            "disable functional crypto verification entirely");
    if (!isKnown(engine.model, knownModels))
        err("[engine] model '", engine.model, "' is unknown (known: ",
            joinKnown(knownModels), ")");
    if (engine.parallel_sampling == 0)
        err("[engine] parallel_sampling must be at least 1");
    if (!isKnown(trace.dataset, knownDatasets))
        err("[trace] dataset '", trace.dataset,
            "' is unknown (known: ", joinKnown(knownDatasets), ")");
    if (trace.rate_per_device <= 0)
        err("[trace] rate_per_device must be positive, got ",
            fmtDouble(trace.rate_per_device));
    if (kind != ScenarioKind::Soak && trace.requests_per_device == 0)
        err("[trace] requests_per_device must be positive for a ",
            toString(kind), " scenario");

    // --- host variants ---
    for (const auto &h : hosts) {
        if (h.bridge_gbps < 0)
            err("[host ", h.name, "] bridge_gbps is negative (",
                fmtDouble(h.bridge_gbps),
                "): bandwidths are non-negative, 0 = uncapped");
        if (h.bridge_latency_us < 0)
            err("[host ", h.name, "] bridge_latency_us is negative");
        for (const auto &other : hosts) {
            if (&other != &h && other.name == h.name) {
                err("[host ", h.name,
                    "] appears twice: variant names must be unique");
                break;
            }
        }
    }

    // --- faults ---
    auto checkProb = [&](const char *key, double v) {
        if (v < 0 || v > 1)
            err("[faults] ", key, " = ", fmtDouble(v),
                " is not a probability (expected 0..1 at scale 1)");
    };
    checkProb("tag_corruption_rate", faults.tag_corruption_rate);
    checkProb("copy_stall_rate", faults.copy_stall_rate);
    checkProb("lane_fault_rate", faults.lane_fault_rate);
    checkProb("migration_tag_rate", faults.migration_tag_rate);
    checkProb("migration_stall_rate", faults.migration_stall_rate);
    checkProb("dest_crash_rate", faults.dest_crash_rate);
    if (faults.migration_stall_timeout_us <= 0)
        err("[faults] migration_stall_timeout_us must be positive");
    if (faults.max_migration_attempts == 0)
        err("[faults] max_migration_attempts must be at least 1: the "
            "watchdog needs one attempt before it can fall back");
    if (faults.replica_crash_rate < 0)
        err("[faults] replica_crash_rate is negative");
    if (faults.replica_restart_rate < 0)
        err("[faults] replica_restart_rate is negative");
    if (faults.storm_multiplier < 0)
        err("[faults] storm_multiplier is negative");
    if (faults.storm_end_s < faults.storm_start_s)
        err("[faults] storm window ends (",
            fmtDouble(faults.storm_end_s), "s) before it starts (",
            fmtDouble(faults.storm_start_s), "s)");
    for (double s : faults.scales) {
        if (s < 0)
            err("[faults] scales contains ", fmtDouble(s),
                ": fault scales are non-negative (0 = disarmed "
                "baseline)");
    }
    for (double s : faults.scales_quick) {
        if (s < 0)
            err("[faults] scales_quick contains ", fmtDouble(s),
                ": fault scales are non-negative");
    }
    if (faults.dip_window_s <= 0)
        err("[faults] dip_window_s must be positive");
    if (faults.dip_recover_frac < 0 || faults.dip_recover_frac > 1)
        err("[faults] dip_recover_frac must be within 0..1");
    for (unsigned d : faults.crash_devices) {
        if (max_devices > 0 && d >= max_devices) {
            err("[faults] crash_devices names device ", d,
                " but the largest cluster in [cluster] devices has ",
                max_devices, " replicas (ids 0..", max_devices - 1,
                ")");
        }
    }

    // --- admission / slo ---
    if (admission.service_cost_per_sec < 0)
        err("[admission] service_cost_per_sec is negative");
    if (slo.floor_s < 0)
        err("[slo] floor_s is negative");
    if (slo.per_token_ms < 0)
        err("[slo] per_token_ms is negative");

    // --- soak / overload ---
    if (soak.goodput_window_s <= 0)
        err("[soak] goodput_window_s must be positive");
    if (soak.recover_frac < 0 || soak.recover_frac > 1)
        err("[soak] recover_frac must be within 0..1");
    for (const auto &p : soak.phases) {
        if (p.requests == 0)
            err("[soak] phase with 0 requests contributes nothing");
        if (p.rate_per_device <= 0)
            err("[soak] phase rate_per_device must be positive");
    }
    for (double m : overload.multipliers) {
        if (m <= 0)
            err("[overload] multipliers must be positive, got ",
                fmtDouble(m));
    }
    if (overload.requests > 0 && overload.multipliers.empty())
        err("[overload] requests is set but multipliers is empty: "
            "list the rate multipliers to sweep");

    // --- disagg ---
    if (disagg.chunk_kib <= 0)
        err("[disagg] chunk_kib must be positive");
    if (disagg.pipeline_depth == 0)
        err("[disagg] pipeline_depth must be at least 1 (1 = no "
            "speculation, seal strictly behind the verify frontier)");
    unsigned min_devices = max_devices;
    for (unsigned n : cluster.devices)
        min_devices = std::min(min_devices, n);
    if (kind == ScenarioKind::Disagg) {
        if (min_devices < 2 && !cluster.devices.empty())
            err("a disagg scenario splits replicas into prefill and "
                "decode roles: every [cluster] devices entry must be "
                "at least 2");
        if (disagg.prefill_replicas > 0 && min_devices >= 2 &&
            disagg.prefill_replicas >= min_devices) {
            err("[disagg] prefill_replicas (", disagg.prefill_replicas,
                ") leaves no decode replica in the smallest cluster (",
                min_devices, " devices): lower it or drop it (0 = "
                "half the cluster)");
        }
        if (!hosts.empty())
            err("disaggregated sweeps run on private host resources: "
                "[host] variants are not supported for kind = disagg");
        if (soak != SoakSpec{} || overload != OverloadSpec{})
            err("[soak]/[overload] sections only apply to kind = "
                "soak");
        if (scaleAxis(false).empty())
            err("a disagg scenario needs [faults] scales (use "
                "'scales = 0' for a fault-free sweep)");
    } else {
        if (disagg != DisaggSpec{})
            err("a [disagg] section only applies to kind = disagg");
        if (faults.migration_tag_rate != 0 ||
            faults.migration_stall_rate != 0 ||
            faults.dest_crash_rate != 0) {
            err("[faults] migration rates only fire on kind = disagg "
                "runs: nothing migrates in a ", toString(kind),
                " scenario");
        }
    }

    // --- kind-specific shape ---
    switch (kind) {
      case ScenarioKind::ClusterScale:
        if (faults != FaultSpec{})
            err("a cluster_scale scenario does not inject faults: "
                "remove [faults] or set kind = fault_sweep");
        if (soak != SoakSpec{} || overload != OverloadSpec{})
            err("[soak]/[overload] sections only apply to kind = "
                "soak");
        break;
      case ScenarioKind::FaultSweep:
        if (scaleAxis(false).empty())
            err("a fault_sweep scenario needs [faults] scales");
        if (!hosts.empty())
            err("fault sweeps run on private host resources: [host] "
                "variants are not supported for kind = fault_sweep");
        if (soak != SoakSpec{} || overload != OverloadSpec{})
            err("[soak]/[overload] sections only apply to kind = "
                "soak");
        break;
      case ScenarioKind::Soak:
        if (soak.phases.empty())
            err("a soak scenario needs at least one [soak] phase "
                "('phase = <requests> <requests_quick> <rate>')");
        if (cluster.modes.size() != 1 ||
            (cluster.modes[0] != SystemMode::Cc &&
             cluster.modes[0] != SystemMode::Pipe)) {
            err("a soak scenario serves one system: set [cluster] "
                "modes to exactly one of Cc or Pipe");
        }
        if (!hosts.empty())
            err("the soak harness runs on private host resources: "
                "[host] variants are not supported for kind = soak");
        if (cluster.devices.size() != 1)
            err("a soak scenario runs one fixed cluster: [cluster] "
                "devices must name exactly one replica count");
        break;
      case ScenarioKind::Disagg:
        // Shape checks live above (they need min_devices); nothing
        // further here.
        break;
    }

    return errors;
}

} // namespace scenario
} // namespace pipellm
