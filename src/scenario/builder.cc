#include "scenario/builder.hh"

#include "common/logging.hh"

namespace pipellm {
namespace scenario {

ScenarioBuilder::ScenarioBuilder(const ScenarioSpec &spec)
    : spec_(spec)
{
    auto problems = spec.validate();
    PIPELLM_ASSERT(problems.empty(), "invalid scenario '", spec.name,
                   "': ", problems.empty() ? "" : problems.front());
}

gpu::SystemSpec
ScenarioBuilder::systemSpec() const
{
    PIPELLM_ASSERT(spec_.device.spec == "h100",
                   "unknown device spec preset '", spec_.device.spec,
                   "'");
    return gpu::SystemSpec::h100();
}

crypto::ChannelConfig
ScenarioBuilder::channelConfig() const
{
    crypto::ChannelConfig cfg;
    cfg.sample_limit = spec_.device.channel_sample_limit;
    return cfg;
}

llm::ModelConfig
ScenarioBuilder::model() const
{
    const std::string &name = spec_.engine.model;
    if (name == "opt13b")
        return llm::ModelConfig::opt13b();
    if (name == "opt30b")
        return llm::ModelConfig::opt30b();
    if (name == "opt66b")
        return llm::ModelConfig::opt66b();
    if (name == "opt175b")
        return llm::ModelConfig::opt175b();
    if (name == "opt175b-int4")
        return llm::ModelConfig::opt175bInt4();
    if (name == "llama7b")
        return llm::ModelConfig::llama7b();
    FATAL("unknown model preset '", name, "'");
}

trace::DatasetProfile
ScenarioBuilder::datasetProfile() const
{
    const std::string &name = spec_.trace.dataset;
    trace::DatasetProfile profile;
    if (name == "sharegpt")
        profile = trace::DatasetProfile::shareGpt();
    else if (name == "alpaca")
        profile = trace::DatasetProfile::alpaca();
    else if (name == "ultrachat")
        profile = trace::DatasetProfile::ultrachat();
    else
        FATAL("unknown dataset preset '", name, "'");
    if (spec_.trace.max_len > 0)
        profile.max_len = spec_.trace.max_len;
    return profile;
}

runtime::HostResources
ScenarioBuilder::hostResources(const HostVariantSpec &host) const
{
    runtime::HostResources res;
    res.shared_crypto_lanes = host.shared_crypto_lanes;
    res.bridge_bw = host.bridge_gbps * 1e9;
    res.bridge_latency = microseconds(host.bridge_latency_us);
    return res;
}

core::PipeLlmConfig
ScenarioBuilder::pipeConfig(const HostVariantSpec &host) const
{
    core::PipeLlmConfig cfg;
    switch (spec_.pipe.kind) {
      case PipeSpec::Kind::Kv: {
        serving::ClusterConfig cluster_cfg;
        std::uint64_t block_bytes =
            std::uint64_t(cluster_cfg.engine.block_tokens) *
            model().kvBytesPerToken();
        cfg = kvPipeConfig(block_bytes);
        break;
      }
      case PipeSpec::Kind::Offload:
        cfg = offloadPipeConfig(model());
        break;
    }
    if (host.pipe_max_lane_lead_ms >= 0)
        cfg.max_lane_lead = milliseconds(host.pipe_max_lane_lead_ms);
    return cfg;
}

serving::ClusterConfig
ScenarioBuilder::clusterConfig(unsigned threads) const
{
    serving::ClusterConfig cfg;
    cfg.engine.model = model();
    cfg.engine.parallel_sampling = spec_.engine.parallel_sampling;
    cfg.policy = spec_.cluster.policy;
    cfg.threads = threads;
    if (spec_.kind == ScenarioKind::Disagg) {
        cfg.disagg.enabled = true;
        cfg.disagg.prefill_replicas = spec_.disagg.prefill_replicas;
        cfg.disagg.migration.chunk_bytes =
            std::uint64_t(spec_.disagg.chunk_kib * double(KiB));
        cfg.disagg.migration.pipeline_depth =
            spec_.disagg.pipeline_depth;
    }
    return cfg;
}

fault::FaultPlan
ScenarioBuilder::scaledPlan(double scale) const
{
    const FaultSpec &f = spec_.faults;
    fault::FaultPlan plan;
    plan.seed = f.seed;
    plan.tag_corruption_rate = f.tag_corruption_rate * scale;
    plan.copy_stall_rate = f.copy_stall_rate * scale;
    plan.lane_fault_rate = f.lane_fault_rate * scale;
    plan.replica_crash_rate = f.replica_crash_rate * scale;
    plan.replica_restart_rate = f.replica_restart_rate * scale;
    plan.spdm_rekey_ticks = milliseconds(f.spdm_rekey_ms);
    plan.warmup_probe_bytes =
        std::uint64_t(f.warmup_probe_kib * double(KiB));
    plan.migration_tag_rate = f.migration_tag_rate * scale;
    plan.migration_stall_rate = f.migration_stall_rate * scale;
    plan.dest_crash_rate = f.dest_crash_rate * scale;
    plan.migration_stall_timeout =
        microseconds(f.migration_stall_timeout_us);
    plan.max_migration_attempts = f.max_migration_attempts;
    plan.storm_start = seconds(f.storm_start_s);
    plan.storm_end = seconds(f.storm_end_s);
    plan.storm_multiplier = f.storm_multiplier;
    for (unsigned d : f.crash_devices)
        plan.crash_devices.push_back(d);
    return plan;
}

trace::Trace
ScenarioBuilder::poissonTrace(std::size_t n_requests,
                              unsigned n_devices) const
{
    trace::TraceGenerator gen(datasetProfile(), spec_.trace.seed);
    return gen.poisson(n_requests,
                       spec_.trace.rate_per_device * n_devices);
}

BuiltCluster
ScenarioBuilder::build(SystemMode mode, unsigned n_devices,
                       const HostVariantSpec &host, double fault_scale,
                       unsigned threads) const
{
    BuiltCluster out;
    out.platform = std::make_unique<runtime::Platform>(
        systemSpec(), channelConfig(), n_devices,
        hostResources(host));
    if (fault_scale > 0)
        out.platform->armFaults(scaledPlan(fault_scale));

    auto cfg = clusterConfig(threads);
    auto pipe_cfg = pipeConfig(host);
    out.router = std::make_unique<serving::ClusterRouter>(
        *out.platform,
        [mode, pipe_cfg](runtime::Platform &p,
                         runtime::DeviceId device) {
            return makeRuntime(mode, p, pipe_cfg, device);
        },
        cfg);
    return out;
}

chaos::SoakPlan
ScenarioBuilder::soakPlan(bool quick) const
{
    chaos::SoakPlan plan;
    plan.n_devices = spec_.cluster.devices.front();
    plan.use_pipellm = spec_.cluster.modes.front() == SystemMode::Pipe;
    plan.trace_seed = spec_.trace.seed;
    plan.model = model();
    plan.parallel_sampling = spec_.engine.parallel_sampling;
    plan.channel_sample_limit = spec_.device.channel_sample_limit;
    plan.profile = datasetProfile();
    plan.phases.clear();
    for (const auto &ph : spec_.soak.phases) {
        plan.phases.push_back(chaos::SoakPhase{
            quick && ph.requests_quick > 0 ? ph.requests_quick
                                           : ph.requests,
            ph.rate_per_device * plan.n_devices});
    }
    plan.faults = scaledPlan(1);
    plan.admission.shed_enabled = spec_.admission.shed;
    plan.admission.service_cost_per_sec =
        spec_.admission.service_cost_per_sec;
    plan.admission.max_outstanding_cost =
        spec_.admission.max_outstanding_cost;
    plan.slo_floor = seconds(spec_.slo.floor_s);
    plan.slo_per_token = milliseconds(spec_.slo.per_token_ms);
    plan.goodput_window = seconds(spec_.soak.goodput_window_s);
    plan.recover_frac = spec_.soak.recover_frac;
    return plan;
}

chaos::SoakPlan
ScenarioBuilder::overloadPlan(bool quick, double multiplier,
                              bool shed) const
{
    const OverloadSpec &o = spec_.overload;
    auto plan = soakPlan(quick);
    // Pure overload: no faults, one phase at the swept rate.
    plan.faults = fault::FaultPlan{};
    std::size_t n_requests =
        quick && o.requests_quick > 0 ? o.requests_quick : o.requests;
    plan.phases = {chaos::SoakPhase{
        n_requests,
        multiplier * o.rate_per_device * plan.n_devices}};
    plan.slo_floor = seconds(o.slo_floor_s);
    plan.slo_per_token = milliseconds(o.slo_per_token_ms);
    plan.admission.service_cost_per_sec = o.service_cost_per_sec;
    plan.admission.shed_enabled = shed;
    if (!shed)
        plan.admission.max_outstanding_cost = 0;
    return plan;
}

} // namespace scenario
} // namespace pipellm
