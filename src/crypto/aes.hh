/**
 * @file
 * FIPS-197 AES block cipher (encryption direction only).
 *
 * GCM runs AES exclusively in counter mode, so only the forward cipher
 * is needed. The implementation uses the classic four 32-bit T-tables,
 * generated once at startup; throughput is far beyond what the sampled
 * transfers require. AES-128 and AES-256 key sizes are supported (the
 * H100 session cipher is AES-256-GCM; tests also cover AES-128 NIST
 * vectors).
 */

#ifndef PIPELLM_CRYPTO_AES_HH
#define PIPELLM_CRYPTO_AES_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace pipellm {
namespace crypto {

/** AES block size in bytes. */
constexpr std::size_t aesBlockBytes = 16;

/** Expanded-key AES context for 128-, 192- or 256-bit keys. */
class Aes
{
  public:
    /** Expand a key of @p key_bytes length (16, 24 or 32). */
    Aes(const std::uint8_t *key, std::size_t key_bytes);

    /** Convenience: AES-128 from a 16-byte array. */
    static Aes aes128(const std::array<std::uint8_t, 16> &key);

    /** Convenience: AES-256 from a 32-byte array. */
    static Aes aes256(const std::array<std::uint8_t, 32> &key);

    /** Encrypt one 16-byte block (in and out may alias). */
    void encryptBlock(const std::uint8_t in[16],
                      std::uint8_t out[16]) const;

    /** Number of rounds (10/12/14 for AES-128/192/256). */
    unsigned rounds() const { return rounds_; }

  private:
    void expandKey(const std::uint8_t *key, std::size_t key_bytes);

    /** Round keys as big-endian 32-bit words, 4 per round + 4. */
    std::array<std::uint32_t, 60> round_keys_{};
    unsigned rounds_ = 0;
};

} // namespace crypto
} // namespace pipellm

#endif // PIPELLM_CRYPTO_AES_HH
