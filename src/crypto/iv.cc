#include "crypto/iv.hh"

namespace pipellm {
namespace crypto {

const char *
toString(Direction d)
{
    switch (d) {
      case Direction::HostToDevice:
        return "H2D";
      case Direction::DeviceToHost:
        return "D2H";
    }
    return "?";
}

GcmIv
makeIv(Direction dir, std::uint64_t counter)
{
    GcmIv iv{};
    iv[0] = 0x50; // 'P'
    iv[1] = 0x4c; // 'L'
    iv[2] = 0x00;
    iv[3] = std::uint8_t(dir);
    for (int i = 0; i < 8; ++i)
        iv[4 + i] = std::uint8_t(counter >> (56 - 8 * i));
    return iv;
}

} // namespace crypto
} // namespace pipellm
