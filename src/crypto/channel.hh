/**
 * @file
 * The encrypted CPU<->GPU session: key, sampled sealing, and the
 * ciphertext blob that travels over simulated DMA.
 *
 * Fidelity model: each transfer carries a *real* AES-GCM ciphertext
 * and tag over a sampled prefix of the payload (default 4 KiB,
 * configurable up to the full buffer for tests). IV accounting covers
 * the whole transfer. Timing for the full size is charged separately
 * by the simulated crypto/DMA resources. This keeps replay/IV/staleness
 * failures functionally real while letting benches move terabytes of
 * simulated model weights.
 */

#ifndef PIPELLM_CRYPTO_CHANNEL_HH
#define PIPELLM_CRYPTO_CHANNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/audit.hh"
#include "common/units.hh"
#include "crypto/gcm.hh"
#include "crypto/iv.hh"

namespace pipellm {

namespace fault {
class FaultInjector;
} // namespace fault

namespace crypto {

/** Ciphertext of one transfer as it crosses the (simulated) PCIe bus. */
struct CipherBlob
{
    Direction dir = Direction::HostToDevice;
    /** IV counter the sender used. */
    std::uint64_t iv_counter = 0;
    /** Logical transfer size (timing is charged for this). */
    std::uint64_t full_len = 0;
    /** Real ciphertext over the sampled prefix. */
    std::vector<std::uint8_t> sample_ct;
    GcmTag tag{};
    /** Audit tag-ledger serial (0 in non-audit builds). */
    std::uint64_t audit_serial = 0;
    /**
     * Simulation metadata, never on the wire: set when the fault
     * injector corrupted this blob, so receivers can tell an injected
     * bit error (recoverable by retry) from a genuine protocol bug
     * (fatal).
     */
    bool injected_fault = false;
};

/** Session configuration shared by both endpoints. */
struct ChannelConfig
{
    /** AES key length in bytes: 16 or 32 (H100 uses AES-256). */
    std::size_t key_bytes = 32;
    /** Bytes of each payload actually encrypted; 0 means everything. */
    std::uint64_t sample_limit = 4 * 1024;
    /** Seed from which the session key is derived. */
    std::uint64_t key_seed = 0x48313030; // "H100"
};

/**
 * Both endpoints' shared cryptographic material. The CPU runtime and
 * the GPU copy engine each hold their own IvCounter pair; this class
 * owns only the key schedule and the sealing rules.
 */
class SecureChannel
{
  public:
    explicit SecureChannel(const ChannelConfig &config = ChannelConfig{});

    const ChannelConfig &config() const { return config_; }

    /** Bytes of @p full_len that are really encrypted. */
    std::uint64_t sampledLen(std::uint64_t full_len) const;

    /**
     * Seal a transfer: @p sample must hold sampledLen(full_len) bytes
     * of the payload's prefix.
     */
    CipherBlob seal(Direction dir, std::uint64_t iv_counter,
                    const std::uint8_t *sample,
                    std::uint64_t full_len) const;

    /**
     * Open a blob with the receiver's expected counter.
     * @param[out] sample_pt receives the decrypted sampled prefix
     * @return false on tag mismatch (wrong IV, tampering, or stale
     *         speculated plaintext)
     */
    [[nodiscard]] bool open(const CipherBlob &blob,
                            std::uint64_t expected_counter,
                            std::vector<std::uint8_t> &sample_pt) const;

    /** Seal a 1-byte NOP (dummy) transfer, paper §5.3. */
    CipherBlob sealNop(Direction dir, std::uint64_t iv_counter) const;

    const AesGcm &cipher() const { return *gcm_; }

    /** Process-unique audit identity (0 in non-audit builds). */
    std::uint64_t auditId() const { return audit_id_; }

    /**
     * Re-establish the session after an endpoint restart: derive a
     * fresh key (never a previous one) and open a new IV epoch in the
     * audit registry. Both endpoints must re-synchronize their
     * counters to zero afterwards — the CPU side by resetting its
     * IvCounter pair, the GPU side via GpuDevice::enableCc(). Blobs
     * sealed under the old key fail verification by construction, so
     * a pre-crash ciphertext can never be replayed into the new
     * session even at a colliding (direction, counter).
     */
    void rekey();

    /** Completed rekey() calls; 0 for the construction-time session. */
    std::uint64_t epoch() const { return epoch_; }

    /** Wire the machine-wide fault injector (nullptr to detach). */
    void setFaultInjector(fault::FaultInjector *injector);

    /**
     * Corruption hook: flip one ciphertext bit in @p blob (a
     * simulated in-flight PCIe bit error) and mark it injected so
     * GCM verification rejects it recoverably.
     */
    static void corrupt(CipherBlob &blob);

    /**
     * Injector-driven corruption, called by transfer paths at the
     * point the blob crosses the bus; @p now is when it crosses
     * (storm-window modulation).
     * @return true when the blob was corrupted
     */
    bool maybeCorrupt(CipherBlob &blob, Tick now) const;

    /** Tag verification failures observed by open() so far. */
    std::uint64_t tagMismatches() const { return tag_mismatches_; }

  private:
    ChannelConfig config_;
    std::unique_ptr<AesGcm> gcm_;
    std::uint64_t audit_id_ = 0;
    std::uint64_t epoch_ = 0;
    fault::FaultInjector *injector_ = nullptr;
    /** open() is const for readers; the mismatch count is bookkeeping. */
    mutable std::uint64_t tag_mismatches_ = 0;
};

} // namespace crypto
} // namespace pipellm

#endif // PIPELLM_CRYPTO_CHANNEL_HH
