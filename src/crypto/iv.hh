/**
 * @file
 * Initialization-vector accounting, H100 style.
 *
 * NVIDIA CC synchronizes a starting IV between the CVM and the GPU at
 * session setup; afterwards each side increments its local copy by one
 * per transfer, per direction, with no further synchronization (paper
 * §2.2, Figure 1). We model each endpoint's counter explicitly so that
 * speculation bugs surface as real AES-GCM tag failures rather than
 * silent divergence.
 */

#ifndef PIPELLM_CRYPTO_IV_HH
#define PIPELLM_CRYPTO_IV_HH

#include <cstdint>

#include "crypto/gcm.hh"

namespace pipellm {
namespace crypto {

/** Transfer direction of an encrypted channel. */
enum class Direction : std::uint8_t
{
    HostToDevice = 0,
    DeviceToHost = 1,
};

const char *toString(Direction d);

/**
 * Construct the 96-bit GCM IV for (direction, counter): a 32-bit
 * direction salt followed by the 64-bit big-endian counter. Counters
 * are never reused within a direction, satisfying GCM's uniqueness
 * requirement.
 */
GcmIv makeIv(Direction dir, std::uint64_t counter);

/**
 * One endpoint's view of a direction's IV counter. next() hands out
 * the counter to use for the next transfer and advances; peek() allows
 * speculation about future transfers without committing.
 */
class IvCounter
{
  public:
    explicit IvCounter(Direction dir, std::uint64_t start = 0)
        : dir_(dir), next_(start)
    {
    }

    Direction direction() const { return dir_; }

    /** Counter the next transfer will use. */
    std::uint64_t current() const { return next_; }

    /** Consume and return the next counter value. */
    std::uint64_t next() { return next_++; }

    /** Counter value @p ahead transfers in the future. */
    std::uint64_t peek(std::uint64_t ahead = 0) const
    {
        return next_ + ahead;
    }

    /** Advance by @p n transfers (e.g. after NOP padding). */
    void advance(std::uint64_t n = 1) { next_ += n; }

    /** IV for the next transfer, without consuming it. */
    GcmIv currentIv() const { return makeIv(dir_, next_); }

  private:
    Direction dir_;
    std::uint64_t next_;
};

} // namespace crypto
} // namespace pipellm

#endif // PIPELLM_CRYPTO_IV_HH
