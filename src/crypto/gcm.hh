/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D), one-shot API
 * with 96-bit IVs — the mode NVIDIA Confidential Computing uses for
 * CPU<->GPU transfers.
 */

#ifndef PIPELLM_CRYPTO_GCM_HH
#define PIPELLM_CRYPTO_GCM_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/ghash.hh"

namespace pipellm {
namespace crypto {

/** 128-bit GCM authentication tag. */
using GcmTag = std::array<std::uint8_t, 16>;

/** 96-bit GCM initialization vector. */
using GcmIv = std::array<std::uint8_t, 12>;

/** AES-GCM context bound to one key. */
class AesGcm
{
  public:
    /** @param key raw key bytes; @param key_bytes 16 or 32. */
    AesGcm(const std::uint8_t *key, std::size_t key_bytes);

    /**
     * Encrypt @p plaintext under @p iv with optional @p aad.
     * @param[out] ciphertext same length as plaintext
     * @param[out] tag authentication tag
     */
    void seal(const GcmIv &iv,
              const std::uint8_t *aad, std::size_t aad_len,
              const std::uint8_t *plaintext, std::size_t len,
              std::uint8_t *ciphertext, GcmTag &tag) const;

    /**
     * Decrypt and authenticate.
     * @return true if the tag verifies; on false the output buffer
     *         contents are unspecified and must be discarded.
     */
    [[nodiscard]] bool open(const GcmIv &iv,
                            const std::uint8_t *aad, std::size_t aad_len,
                            const std::uint8_t *ciphertext, std::size_t len,
                            const GcmTag &tag,
                            std::uint8_t *plaintext) const;

    /** Vector conveniences used widely in tests. */
    std::vector<std::uint8_t> seal(const GcmIv &iv,
                                   const std::vector<std::uint8_t> &pt,
                                   GcmTag &tag) const;
    [[nodiscard]] bool open(const GcmIv &iv,
                            const std::vector<std::uint8_t> &ct,
                            const GcmTag &tag,
                            std::vector<std::uint8_t> &pt) const;

  private:
    friend class GcmStream;

    void ctrCrypt(const GcmIv &iv, const std::uint8_t *in,
                  std::size_t len, std::uint8_t *out) const;
    GcmTag computeTag(const GcmIv &iv, const std::uint8_t *aad,
                      std::size_t aad_len, const std::uint8_t *ct,
                      std::size_t len) const;

    Aes aes_;
    Block128 h_;
};

/**
 * Incremental GCM encryption/decryption — the interface shape of
 * OpenSSL's EVP_EncryptUpdate, which the real CUDA library calls and
 * PipeLLM interposes on (§6). Feed AAD first, then message data in
 * arbitrary-sized chunks; finish() produces (encrypt) or verifies
 * (decrypt) the tag. The one-shot AesGcm::seal/open are equivalent to
 * a single update() call.
 *
 * Chunk boundaries need not be block-aligned; a partial block is
 * buffered internally.
 */
class GcmStream
{
  public:
    enum class Op
    {
        Encrypt,
        Decrypt,
    };

    GcmStream(const AesGcm &gcm, const GcmIv &iv, Op op);

    /** Absorb AAD; only legal before the first update(). */
    void aad(const std::uint8_t *data, std::size_t len);

    /** Process @p len bytes of message data into @p out. */
    void update(const std::uint8_t *in, std::size_t len,
                std::uint8_t *out);

    /**
     * Finish the stream. Encrypt: writes the tag. Decrypt: verifies
     * against @p tag.
     * @return true (encrypt always; decrypt iff the tag matches)
     */
    [[nodiscard]] bool finish(GcmTag &tag);

    std::uint64_t processedBytes() const { return msg_len_; }

  private:
    void keystreamBlock();

    const AesGcm &gcm_;
    Op op_;
    Ghash ghash_;
    std::uint8_t counter_[16];
    std::uint8_t j0_[16];
    std::uint8_t keystream_[16];
    unsigned ks_used_ = 16; ///< bytes of keystream_ consumed
    std::uint8_t ct_buf_[16];
    unsigned ct_buf_len_ = 0; ///< pending partial GHASH block
    std::uint64_t aad_len_ = 0;
    std::uint64_t msg_len_ = 0;
    bool aad_done_ = false;
    bool finished_ = false;
};

} // namespace crypto
} // namespace pipellm

#endif // PIPELLM_CRYPTO_GCM_HH
