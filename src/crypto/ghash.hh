/**
 * @file
 * GHASH, the universal hash of GCM, over GF(2^128).
 *
 * Uses Shoup's 4-bit table method: a 16-entry table of H multiples is
 * precomputed per hash key, then each input block costs 32 table
 * lookups.
 */

#ifndef PIPELLM_CRYPTO_GHASH_HH
#define PIPELLM_CRYPTO_GHASH_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace pipellm {
namespace crypto {

/** A 128-bit GF element held as two big-endian 64-bit halves. */
struct Block128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool
    operator==(const Block128 &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

/** Load/store between Block128 and 16 big-endian bytes. */
Block128 loadBlock(const std::uint8_t bytes[16]);
void storeBlock(const Block128 &b, std::uint8_t bytes[16]);

/** Incremental GHASH keyed by H = AES_K(0^128). */
class Ghash
{
  public:
    /** Build the 4-bit multiplication table for hash key @p h. */
    explicit Ghash(const Block128 &h);

    /** Reset the accumulator to zero. */
    void reset();

    /**
     * Absorb @p len bytes. Partial trailing blocks are zero-padded,
     * matching GCM's treatment of the final AAD/ciphertext block, so
     * callers must only pass non-16-byte-aligned data as the last
     * update of a segment.
     */
    void update(const std::uint8_t *data, std::size_t len);

    /** Absorb exactly one 16-byte block. */
    void updateBlock(const std::uint8_t block[16]);

    /** Absorb the GCM length block (bit lengths of AAD and text). */
    void updateLengths(std::uint64_t aad_bytes, std::uint64_t text_bytes);

    /** Current accumulator value. */
    Block128 digest() const { return acc_; }

  private:
    void mulByH();

    std::array<Block128, 16> table_{};
    Block128 acc_{};
};

} // namespace crypto
} // namespace pipellm

#endif // PIPELLM_CRYPTO_GHASH_HH
