#include "crypto/gcm.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace pipellm {
namespace crypto {

namespace {

/** Increment the low 32 bits of a counter block (inc32). */
void
inc32(std::uint8_t block[16])
{
    for (int i = 15; i >= 12; --i) {
        if (++block[i] != 0)
            break;
    }
}

void
makeJ0(const GcmIv &iv, std::uint8_t j0[16])
{
    std::memcpy(j0, iv.data(), 12);
    j0[12] = 0;
    j0[13] = 0;
    j0[14] = 0;
    j0[15] = 1;
}

} // namespace

AesGcm::AesGcm(const std::uint8_t *key, std::size_t key_bytes)
    : aes_(key, key_bytes)
{
    std::uint8_t zero[16] = {};
    std::uint8_t hbytes[16];
    aes_.encryptBlock(zero, hbytes);
    h_ = loadBlock(hbytes);
}

void
AesGcm::ctrCrypt(const GcmIv &iv, const std::uint8_t *in,
                 std::size_t len, std::uint8_t *out) const
{
    std::uint8_t counter[16];
    makeJ0(iv, counter);
    std::uint8_t keystream[16];
    while (len > 0) {
        inc32(counter);
        aes_.encryptBlock(counter, keystream);
        std::size_t n = len < 16 ? len : 16;
        for (std::size_t i = 0; i < n; ++i)
            out[i] = std::uint8_t(in[i] ^ keystream[i]);
        in += n;
        out += n;
        len -= n;
    }
}

GcmTag
AesGcm::computeTag(const GcmIv &iv, const std::uint8_t *aad,
                   std::size_t aad_len, const std::uint8_t *ct,
                   std::size_t len) const
{
    Ghash ghash(h_);
    if (aad_len > 0)
        ghash.update(aad, aad_len);
    if (len > 0)
        ghash.update(ct, len);
    ghash.updateLengths(aad_len, len);

    std::uint8_t j0[16];
    makeJ0(iv, j0);
    std::uint8_t ek_j0[16];
    aes_.encryptBlock(j0, ek_j0);

    std::uint8_t s[16];
    storeBlock(ghash.digest(), s);
    GcmTag tag;
    for (int i = 0; i < 16; ++i)
        tag[i] = std::uint8_t(s[i] ^ ek_j0[i]);
    return tag;
}

void
AesGcm::seal(const GcmIv &iv, const std::uint8_t *aad,
             std::size_t aad_len, const std::uint8_t *plaintext,
             std::size_t len, std::uint8_t *ciphertext, GcmTag &tag) const
{
    ctrCrypt(iv, plaintext, len, ciphertext);
    tag = computeTag(iv, aad, aad_len, ciphertext, len);
}

bool
AesGcm::open(const GcmIv &iv, const std::uint8_t *aad,
             std::size_t aad_len, const std::uint8_t *ciphertext,
             std::size_t len, const GcmTag &tag,
             std::uint8_t *plaintext) const
{
    GcmTag expected = computeTag(iv, aad, aad_len, ciphertext, len);
    // Constant-time comparison: not security-critical in a simulator,
    // but it is the correct idiom.
    std::uint8_t diff = 0;
    for (int i = 0; i < 16; ++i)
        diff |= std::uint8_t(expected[i] ^ tag[i]);
    if (diff != 0)
        return false;
    ctrCrypt(iv, ciphertext, len, plaintext);
    return true;
}

GcmStream::GcmStream(const AesGcm &gcm, const GcmIv &iv, Op op)
    : gcm_(gcm), op_(op), ghash_(gcm.h_)
{
    makeJ0(iv, j0_);
    std::memcpy(counter_, j0_, sizeof(counter_));
}

void
GcmStream::keystreamBlock()
{
    inc32(counter_);
    gcm_.aes_.encryptBlock(counter_, keystream_);
    ks_used_ = 0;
}

void
GcmStream::aad(const std::uint8_t *data, std::size_t len)
{
    PIPELLM_ASSERT(!aad_done_ && msg_len_ == 0,
                   "GCM AAD must precede message data");
    PIPELLM_ASSERT(aad_len_ == 0, "single AAD segment supported");
    // GCM zero-pads the final partial AAD block; Ghash::update
    // handles the alignment.
    ghash_.update(data, len);
    aad_len_ += len;
}

void
GcmStream::update(const std::uint8_t *in, std::size_t len,
                  std::uint8_t *out)
{
    PIPELLM_ASSERT(!finished_, "GCM stream already finished");
    aad_done_ = true;
    msg_len_ += len;

    while (len > 0) {
        if (ks_used_ == 16)
            keystreamBlock();
        std::size_t n = std::min<std::size_t>(len, 16 - ks_used_);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = std::uint8_t(in[i] ^ keystream_[ks_used_ + i]);

        // GHASH always runs over the ciphertext side.
        const std::uint8_t *ct =
            op_ == Op::Encrypt ? out : in;
        for (std::size_t i = 0; i < n; ++i) {
            ct_buf_[ct_buf_len_++] = ct[i];
            if (ct_buf_len_ == 16) {
                ghash_.updateBlock(ct_buf_);
                ct_buf_len_ = 0;
            }
        }

        ks_used_ += unsigned(n);
        in += n;
        out += n;
        len -= n;
    }
}

bool
GcmStream::finish(GcmTag &tag)
{
    PIPELLM_ASSERT(!finished_, "GCM stream already finished");
    finished_ = true;

    if (ct_buf_len_ > 0) {
        std::uint8_t padded[16] = {};
        std::memcpy(padded, ct_buf_, ct_buf_len_);
        ghash_.updateBlock(padded);
        ct_buf_len_ = 0;
    }
    ghash_.updateLengths(aad_len_, msg_len_);

    std::uint8_t ek_j0[16];
    gcm_.aes_.encryptBlock(j0_, ek_j0);
    std::uint8_t s[16];
    storeBlock(ghash_.digest(), s);

    if (op_ == Op::Encrypt) {
        for (int i = 0; i < 16; ++i)
            tag[i] = std::uint8_t(s[i] ^ ek_j0[i]);
        return true;
    }
    std::uint8_t diff = 0;
    for (int i = 0; i < 16; ++i)
        diff |= std::uint8_t((s[i] ^ ek_j0[i]) ^ tag[i]);
    return diff == 0;
}

std::vector<std::uint8_t>
AesGcm::seal(const GcmIv &iv, const std::vector<std::uint8_t> &pt,
             GcmTag &tag) const
{
    std::vector<std::uint8_t> ct(pt.size());
    seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
    return ct;
}

bool
AesGcm::open(const GcmIv &iv, const std::vector<std::uint8_t> &ct,
             const GcmTag &tag, std::vector<std::uint8_t> &pt) const
{
    pt.resize(ct.size());
    return open(iv, nullptr, 0, ct.data(), ct.size(), tag, pt.data());
}

} // namespace crypto
} // namespace pipellm
