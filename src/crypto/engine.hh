/**
 * @file
 * The host CPU's AES-GCM crypto engine: the machine-wide supply of
 * encryption/decryption lanes that every runtime draws from.
 *
 * The paper's bottleneck analysis (§7, Fig. 9) is about *shared*
 * host-side crypto: all CC sessions on a multi-GPU CVM encrypt on the
 * same CPU cores. The engine has two modes:
 *
 *  - Dedicated (default): every acquire() hands out a privately owned
 *    LaneGroup, reproducing the original per-runtime lane model
 *    bit-for-bit. Runtimes on different devices never contend.
 *  - Shared: one pool of k lanes serves every client. A client still
 *    declares a width (how many lanes its threads can drive at once),
 *    but its submissions land on the common pool, so speculation on
 *    one device queues against demand encryption on another.
 */

#ifndef PIPELLM_CRYPTO_ENGINE_HH
#define PIPELLM_CRYPTO_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/resource.hh"

namespace pipellm {

namespace fault {
class FaultInjector;
} // namespace fault

namespace crypto {

/**
 * A client's handle onto CPU crypto lanes: either a privately owned
 * LaneGroup (dedicated mode) or a width-limited view of the shared
 * pool. Movable; obtained from CryptoEngine::acquire().
 */
class CryptoLanes
{
  public:
    /** Dedicated lanes, privately owned. */
    CryptoLanes(sim::EventQueue &eq, std::string name, unsigned width,
                double bytes_per_sec_per_lane);

    /** A @p width-wide view onto the shared pool (not owned). */
    CryptoLanes(sim::LaneGroup &pool, unsigned width);

    CryptoLanes(CryptoLanes &&) = default;
    CryptoLanes &operator=(CryptoLanes &&) = default;

    /** Dispatch @p bytes to a lane; completion tick. */
    Tick submit(std::uint64_t bytes);

    /** Dispatch with a start-time floor. */
    Tick submitNotBefore(Tick earliest, std::uint64_t bytes);

    /**
     * Earliest tick at which a request submitted now could start:
     * accounts for both pool availability and this client's own
     * thread width (a shared view cannot out-parallelize its width
     * even when the pool has idle lanes).
     */
    Tick earliestFree() const;

    /** Lanes this client's threads can drive concurrently. */
    unsigned width() const { return unsigned(slot_free_.size()); }

    /** True when this handle is a view of a shared pool. */
    bool sharedView() const { return owned_ == nullptr; }

    /** Bytes submitted through this handle. */
    std::uint64_t bytesSubmitted() const { return bytes_submitted_; }

    /** The lane group requests land on (pool or private). */
    const sim::LaneGroup &group() const { return *group_; }

    /** Wire the machine-wide fault injector (nullptr to detach). */
    void setFaultInjector(fault::FaultInjector *injector);

    /** Jobs redone after an injected lane death. */
    std::uint64_t laneFaults() const { return lane_faults_; }

    /** Simulated time the redone jobs added. */
    Tick laneFaultTicks() const { return lane_fault_ticks_; }

  private:
    /** One submission, without the fault-retry wrapper. */
    Tick dispatch(Tick earliest, std::uint64_t bytes);

    std::unique_ptr<sim::LaneGroup> owned_; // dedicated mode only
    sim::LaneGroup *group_;                 // owned_ or the shared pool
    fault::FaultInjector *injector_ = nullptr;
    std::uint64_t lane_faults_ = 0;
    Tick lane_fault_ticks_ = 0;
    /**
     * Per-thread occupancy in shared mode: slot i holds the tick at
     * which this client's i-th thread is free again. Dedicated mode
     * keeps them for width(), but the LaneGroup's own lanes already
     * bound parallelism.
     */
    std::vector<Tick> slot_free_;
    std::uint64_t bytes_submitted_ = 0;
};

/** Machine-wide crypto lane supply, owned by the Platform. */
class CryptoEngine
{
  public:
    /**
     * @param bytes_per_sec_per_lane single-thread AES-GCM rate
     * @param shared_lanes pool size; 0 selects dedicated mode
     */
    CryptoEngine(sim::EventQueue &eq, double bytes_per_sec_per_lane,
                 unsigned shared_lanes = 0);

    /** True when every acquire() shares one pool. */
    bool shared() const { return pool_ != nullptr; }

    /** Lanes in the shared pool (0 in dedicated mode). */
    unsigned poolLanes() const { return pool_ ? pool_->lanes() : 0; }

    /**
     * Hand out lanes to a client. Dedicated mode: a private
     * @p width-lane group named @p name. Shared mode: a @p width-wide
     * view of the pool (@p name is ignored; the pool was named at
     * construction).
     */
    CryptoLanes acquire(const std::string &name, unsigned width);

    /** The shared pool, for stats; null in dedicated mode. */
    const sim::LaneGroup *pool() const { return pool_.get(); }

    double bwPerLane() const { return bw_per_lane_; }

    /**
     * Wire the machine-wide fault injector; handles acquired from now
     * on can suffer injected lane deaths.
     */
    void setFaultInjector(fault::FaultInjector *injector);

  private:
    sim::EventQueue &eq_;
    double bw_per_lane_;
    std::unique_ptr<sim::LaneGroup> pool_;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace crypto
} // namespace pipellm

#endif // PIPELLM_CRYPTO_ENGINE_HH
