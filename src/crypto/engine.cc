#include "crypto/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault.hh"

namespace pipellm {
namespace crypto {

CryptoLanes::CryptoLanes(sim::EventQueue &eq, std::string name,
                         unsigned width, double bytes_per_sec_per_lane)
    : owned_(std::make_unique<sim::LaneGroup>(eq, std::move(name), width,
                                              bytes_per_sec_per_lane)),
      group_(owned_.get()), slot_free_(width, 0)
{
}

CryptoLanes::CryptoLanes(sim::LaneGroup &pool, unsigned width)
    : owned_(nullptr), group_(&pool), slot_free_(width, 0)
{
    PIPELLM_ASSERT(width > 0, "crypto lane view needs width >= 1");
}

Tick
CryptoLanes::submit(std::uint64_t bytes)
{
    return submitNotBefore(0, bytes);
}

Tick
CryptoLanes::submitNotBefore(Tick earliest, std::uint64_t bytes)
{
    bytes_submitted_ += bytes;
    Tick done = dispatch(earliest, bytes);
    // An injected lane death loses the finished attempt; the job is
    // redone on a re-initialized lane, back to back.
    if (injector_ != nullptr && injector_->failLane(done)) {
        ++lane_faults_;
        Tick redo = dispatch(done, bytes);
        lane_fault_ticks_ += redo - done;
        done = redo;
    }
    return done;
}

Tick
CryptoLanes::dispatch(Tick earliest, std::uint64_t bytes)
{
    if (owned_)
        return group_->submitNotBefore(earliest, bytes);

    // Shared view: the client's own thread width caps its parallelism
    // even when the pool has idle lanes. Occupy this client's
    // earliest-free slot for the full request, then queue on the pool.
    // Best-fit lane choice keeps one client's serial backlog (e.g. a
    // deep speculative pre-encryption chain) pinned to as few pool
    // lanes as possible instead of marking them all busy.
    auto slot = std::min_element(slot_free_.begin(), slot_free_.end());
    Tick floor = std::max(earliest, *slot);
    Tick done = group_->submitNotBeforeBestFit(floor, bytes);
    *slot = done;
    return done;
}

void
CryptoLanes::setFaultInjector(fault::FaultInjector *injector)
{
    injector_ = injector;
}

Tick
CryptoLanes::earliestFree() const
{
    if (owned_)
        return group_->earliestFree();
    Tick slot = *std::min_element(slot_free_.begin(), slot_free_.end());
    return std::max(slot, group_->earliestFree());
}

CryptoEngine::CryptoEngine(sim::EventQueue &eq,
                           double bytes_per_sec_per_lane,
                           unsigned shared_lanes)
    : eq_(eq), bw_per_lane_(bytes_per_sec_per_lane)
{
    if (shared_lanes > 0)
        pool_ = std::make_unique<sim::LaneGroup>(
            eq_, "host-crypto", shared_lanes, bw_per_lane_);
}

CryptoLanes
CryptoEngine::acquire(const std::string &name, unsigned width)
{
    PIPELLM_ASSERT(width > 0, "crypto client needs width >= 1: ", name);
    CryptoLanes lanes = pool_ ? CryptoLanes(*pool_, width)
                              : CryptoLanes(eq_, name, width,
                                            bw_per_lane_);
    lanes.setFaultInjector(injector_);
    return lanes;
}

void
CryptoEngine::setFaultInjector(fault::FaultInjector *injector)
{
    injector_ = injector;
}

} // namespace crypto
} // namespace pipellm
