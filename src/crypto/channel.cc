#include "crypto/channel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/fault.hh"

namespace pipellm {
namespace crypto {

namespace {

/** Derive a deterministic session key from the configured seed. */
std::vector<std::uint8_t>
deriveKey(std::uint64_t seed, std::size_t key_bytes)
{
    std::vector<std::uint8_t> key(key_bytes);
    for (std::size_t i = 0; i < key_bytes; ++i)
        key[i] = Rng::syntheticByte(seed, i);
    return key;
}

} // namespace

SecureChannel::SecureChannel(const ChannelConfig &config)
    : config_(config)
{
    PIPELLM_ASSERT(config_.key_bytes == 16 || config_.key_bytes == 32,
                   "bad key size");
    auto key = deriveKey(config_.key_seed, config_.key_bytes);
    gcm_ = std::make_unique<AesGcm>(key.data(), key.size());
    PIPELLM_AUDIT_HOOK(audit_id_ = audit::Auditor::instance().newId();
                       audit::Auditor::instance().noteSessionEpoch(
                           audit_id_));
}

std::uint64_t
SecureChannel::sampledLen(std::uint64_t full_len) const
{
    if (config_.sample_limit == 0)
        return full_len;
    return std::min(full_len, config_.sample_limit);
}

CipherBlob
SecureChannel::seal(Direction dir, std::uint64_t iv_counter,
                    const std::uint8_t *sample,
                    std::uint64_t full_len) const
{
    CipherBlob blob;
    blob.dir = dir;
    blob.iv_counter = iv_counter;
    blob.full_len = full_len;
    std::uint64_t n = sampledLen(full_len);
    blob.sample_ct.resize(n);

    // The full length is authenticated as AAD so a blob cannot be
    // replayed as a transfer of a different size.
    std::uint8_t aad[8];
    for (int i = 0; i < 8; ++i)
        aad[i] = std::uint8_t(full_len >> (56 - 8 * i));

    gcm_->seal(makeIv(dir, iv_counter), aad, sizeof(aad), sample, n,
               blob.sample_ct.data(), blob.tag);
    PIPELLM_AUDIT_HOOK(blob.audit_serial =
                           audit::Auditor::instance().noteSeal(
                               audit_id_, int(dir), iv_counter));
    return blob;
}

bool
SecureChannel::open(const CipherBlob &blob, std::uint64_t expected_counter,
                    std::vector<std::uint8_t> &sample_pt) const
{
    std::uint8_t aad[8];
    for (int i = 0; i < 8; ++i)
        aad[i] = std::uint8_t(blob.full_len >> (56 - 8 * i));

    sample_pt.resize(blob.sample_ct.size());
    bool ok = gcm_->open(makeIv(blob.dir, expected_counter), aad,
                         sizeof(aad), blob.sample_ct.data(),
                         blob.sample_ct.size(), blob.tag,
                         sample_pt.data());
    PIPELLM_AUDIT_HOOK(if (ok) audit::Auditor::instance().noteVerified(
                           blob.audit_serial));
    if (!ok)
        ++tag_mismatches_;
    return ok;
}

void
SecureChannel::setFaultInjector(fault::FaultInjector *injector)
{
    injector_ = injector;
}

void
SecureChannel::corrupt(CipherBlob &blob)
{
    PIPELLM_ASSERT(!blob.sample_ct.empty(),
                   "cannot corrupt an empty ciphertext");
    blob.sample_ct[0] ^= 0x01;
    blob.injected_fault = true;
}

bool
SecureChannel::maybeCorrupt(CipherBlob &blob, Tick now) const
{
    if (injector_ == nullptr || !injector_->corruptTag(now))
        return false;
    corrupt(blob);
    return true;
}

void
SecureChannel::rekey()
{
    // A fresh epoch perturbs the derivation seed so the new key never
    // repeats an old one (per-device seeds differ by 1; the odd
    // 64-bit stride cannot walk one seed onto another within any
    // realistic epoch count).
    ++epoch_;
    auto key = deriveKey(config_.key_seed +
                             epoch_ * 0x9E3779B97F4A7C15ULL,
                         config_.key_bytes);
    gcm_ = std::make_unique<AesGcm>(key.data(), key.size());
    // Same audit identity, new exposure epoch: counters reused after
    // the re-key are legal, counters reused within it still trip.
    PIPELLM_AUDIT_HOOK(audit::Auditor::instance().noteSessionEpoch(
        audit_id_));
}

CipherBlob
SecureChannel::sealNop(Direction dir, std::uint64_t iv_counter) const
{
    // A NOP carries one dummy byte; its only purpose is advancing the
    // IV counters on both sides (paper §5.3). Dummy data leaks nothing.
    std::uint8_t dummy = 0;
    return seal(dir, iv_counter, &dummy, 1);
}

} // namespace crypto
} // namespace pipellm
