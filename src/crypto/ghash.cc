#include "crypto/ghash.hh"

#include <cstring>

namespace pipellm {
namespace crypto {

Block128
loadBlock(const std::uint8_t bytes[16])
{
    Block128 b;
    for (int i = 0; i < 8; ++i)
        b.hi = (b.hi << 8) | bytes[i];
    for (int i = 8; i < 16; ++i)
        b.lo = (b.lo << 8) | bytes[i];
    return b;
}

void
storeBlock(const Block128 &b, std::uint8_t bytes[16])
{
    for (int i = 0; i < 8; ++i)
        bytes[i] = std::uint8_t(b.hi >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
        bytes[8 + i] = std::uint8_t(b.lo >> (56 - 8 * i));
}

namespace {

/** Right-shift a 128-bit value by one bit. */
Block128
shiftRight1(const Block128 &x)
{
    Block128 r;
    r.lo = (x.lo >> 1) | (x.hi << 63);
    r.hi = x.hi >> 1;
    return r;
}

Block128
xorBlocks(const Block128 &a, const Block128 &b)
{
    return Block128{a.hi ^ b.hi, a.lo ^ b.lo};
}

// Reduction constants for the 4-bit method: when shifting the
// accumulator right by 4 bits, the bits that fall off multiply the
// field polynomial. reduce[i] is (i * x^-4 mod p) folded into the top.
const std::uint64_t reduceTable[16] = {
    0x0000000000000000ull, 0x1c20000000000000ull, 0x3840000000000000ull,
    0x2460000000000000ull, 0x7080000000000000ull, 0x6ca0000000000000ull,
    0x48c0000000000000ull, 0x54e0000000000000ull, 0xe100000000000000ull,
    0xfd20000000000000ull, 0xd940000000000000ull, 0xc560000000000000ull,
    0x9180000000000000ull, 0x8da0000000000000ull, 0xa9c0000000000000ull,
    0xb5e0000000000000ull,
};

} // namespace

Ghash::Ghash(const Block128 &h)
{
    // table_[i] = (i as 4-bit value, big-endian bit order) * H.
    // Build by: table_[reverse-doubling]. Standard construction:
    // table_[8] = H, table_[4] = H*x, table_[2] = H*x^2, ...
    table_[0] = Block128{};
    table_[8] = h;
    // Multiply by x (right shift with reduction) to fill 4, 2, 1.
    for (int i = 8; i > 1; i >>= 1) {
        Block128 v = table_[i];
        bool lsb = v.lo & 1;
        v = shiftRight1(v);
        if (lsb)
            v.hi ^= 0xe100000000000000ull;
        table_[i >> 1] = v;
    }
    // Remaining entries by XOR of the power-of-two entries.
    for (int i = 2; i < 16; i <<= 1) {
        for (int j = 1; j < i; ++j)
            table_[i + j] = xorBlocks(table_[i], table_[j]);
    }
}

void
Ghash::reset()
{
    acc_ = Block128{};
}

void
Ghash::mulByH()
{
    // Process the accumulator one nibble at a time, from the lowest
    // nibble of lo upward (Shoup's method, right-to-left).
    Block128 z{};
    for (int nibble = 0; nibble < 32; ++nibble) {
        int shift = 4 * nibble;
        unsigned idx;
        if (nibble < 16)
            idx = unsigned((acc_.lo >> shift) & 0xf);
        else
            idx = unsigned((acc_.hi >> (shift - 64)) & 0xf);
        if (nibble != 0) {
            // Shift z right by 4 with reduction.
            unsigned dropped = unsigned(z.lo & 0xf);
            z.lo = (z.lo >> 4) | (z.hi << 60);
            z.hi = (z.hi >> 4) ^ reduceTable[dropped];
        }
        z = xorBlocks(z, table_[idx]);
    }
    acc_ = z;
}

void
Ghash::updateBlock(const std::uint8_t block[16])
{
    Block128 x = loadBlock(block);
    acc_ = xorBlocks(acc_, x);
    mulByH();
}

void
Ghash::update(const std::uint8_t *data, std::size_t len)
{
    std::uint8_t padded[16];
    while (len >= 16) {
        updateBlock(data);
        data += 16;
        len -= 16;
    }
    if (len > 0) {
        std::memset(padded, 0, sizeof(padded));
        std::memcpy(padded, data, len);
        updateBlock(padded);
    }
}

void
Ghash::updateLengths(std::uint64_t aad_bytes, std::uint64_t text_bytes)
{
    std::uint8_t block[16];
    Block128 lens{aad_bytes * 8, text_bytes * 8};
    storeBlock(lens, block);
    updateBlock(block);
}

} // namespace crypto
} // namespace pipellm
