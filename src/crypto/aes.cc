#include "crypto/aes.hh"

#include <cstring>

#include "common/logging.hh"

namespace pipellm {
namespace crypto {

namespace {

/** The AES S-box, computed at startup from the finite-field inverse. */
struct AesTables
{
    std::uint8_t sbox[256];
    std::uint32_t t0[256];
    std::uint32_t t1[256];
    std::uint32_t t2[256];
    std::uint32_t t3[256];

    AesTables();
};

std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

AesTables::AesTables()
{
    // Build the S-box: multiplicative inverse in GF(2^8) followed by
    // the affine transform (FIPS-197 section 5.1.1).
    std::uint8_t inv[256];
    inv[0] = 0;
    for (unsigned a = 1; a < 256; ++a) {
        for (unsigned b = 1; b < 256; ++b) {
            if (gfMul(std::uint8_t(a), std::uint8_t(b)) == 1) {
                inv[a] = std::uint8_t(b);
                break;
            }
        }
    }
    for (unsigned i = 0; i < 256; ++i) {
        std::uint8_t x = inv[i];
        std::uint8_t s = std::uint8_t(
            x ^ (std::uint8_t)(x << 1 | x >> 7) ^
            (std::uint8_t)(x << 2 | x >> 6) ^
            (std::uint8_t)(x << 3 | x >> 5) ^
            (std::uint8_t)(x << 4 | x >> 4) ^ 0x63);
        sbox[i] = s;
        // T-table entry: MixColumns applied to the substituted byte.
        std::uint8_t s2 = gfMul(s, 2);
        std::uint8_t s3 = std::uint8_t(s2 ^ s);
        std::uint32_t t = (std::uint32_t(s2) << 24) |
                          (std::uint32_t(s) << 16) |
                          (std::uint32_t(s) << 8) |
                          std::uint32_t(s3);
        t0[i] = t;
        t1[i] = (t >> 8) | (t << 24);
        t2[i] = (t >> 16) | (t << 16);
        t3[i] = (t >> 24) | (t << 8);
    }
}

const AesTables &
tables()
{
    static const AesTables t;
    return t;
}

std::uint32_t
loadBe32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

void
storeBe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = std::uint8_t(v >> 24);
    p[1] = std::uint8_t(v >> 16);
    p[2] = std::uint8_t(v >> 8);
    p[3] = std::uint8_t(v);
}

std::uint32_t
subWord(std::uint32_t w)
{
    const auto &t = tables();
    return (std::uint32_t(t.sbox[(w >> 24) & 0xff]) << 24) |
           (std::uint32_t(t.sbox[(w >> 16) & 0xff]) << 16) |
           (std::uint32_t(t.sbox[(w >> 8) & 0xff]) << 8) |
           std::uint32_t(t.sbox[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

} // namespace

Aes::Aes(const std::uint8_t *key, std::size_t key_bytes)
{
    expandKey(key, key_bytes);
}

Aes
Aes::aes128(const std::array<std::uint8_t, 16> &key)
{
    return Aes(key.data(), key.size());
}

Aes
Aes::aes256(const std::array<std::uint8_t, 32> &key)
{
    return Aes(key.data(), key.size());
}

void
Aes::expandKey(const std::uint8_t *key, std::size_t key_bytes)
{
    PIPELLM_ASSERT(key_bytes == 16 || key_bytes == 24 ||
                       key_bytes == 32,
                   "unsupported AES key size: ", key_bytes);
    const unsigned nk = unsigned(key_bytes / 4);
    rounds_ = nk + 6;
    const unsigned total = 4 * (rounds_ + 1);

    for (unsigned i = 0; i < nk; ++i)
        round_keys_[i] = loadBe32(key + 4 * i);

    std::uint32_t rcon = 0x01000000;
    for (unsigned i = nk; i < total; ++i) {
        std::uint32_t temp = round_keys_[i - 1];
        if (i % nk == 0) {
            temp = subWord(rotWord(temp)) ^ rcon;
            // xtime on the rcon byte
            std::uint8_t rc = std::uint8_t(rcon >> 24);
            rc = std::uint8_t((rc << 1) ^ ((rc & 0x80) ? 0x1b : 0));
            rcon = std::uint32_t(rc) << 24;
        } else if (nk > 6 && i % nk == 4) {
            temp = subWord(temp);
        }
        round_keys_[i] = round_keys_[i - nk] ^ temp;
    }
}

void
Aes::encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
{
    const auto &t = tables();
    std::uint32_t s0 = loadBe32(in + 0) ^ round_keys_[0];
    std::uint32_t s1 = loadBe32(in + 4) ^ round_keys_[1];
    std::uint32_t s2 = loadBe32(in + 8) ^ round_keys_[2];
    std::uint32_t s3 = loadBe32(in + 12) ^ round_keys_[3];

    const std::uint32_t *rk = round_keys_.data() + 4;
    for (unsigned round = 1; round < rounds_; ++round, rk += 4) {
        std::uint32_t n0 = t.t0[(s0 >> 24) & 0xff] ^
                           t.t1[(s1 >> 16) & 0xff] ^
                           t.t2[(s2 >> 8) & 0xff] ^
                           t.t3[s3 & 0xff] ^ rk[0];
        std::uint32_t n1 = t.t0[(s1 >> 24) & 0xff] ^
                           t.t1[(s2 >> 16) & 0xff] ^
                           t.t2[(s3 >> 8) & 0xff] ^
                           t.t3[s0 & 0xff] ^ rk[1];
        std::uint32_t n2 = t.t0[(s2 >> 24) & 0xff] ^
                           t.t1[(s3 >> 16) & 0xff] ^
                           t.t2[(s0 >> 8) & 0xff] ^
                           t.t3[s1 & 0xff] ^ rk[2];
        std::uint32_t n3 = t.t0[(s3 >> 24) & 0xff] ^
                           t.t1[(s0 >> 16) & 0xff] ^
                           t.t2[(s1 >> 8) & 0xff] ^
                           t.t3[s2 & 0xff] ^ rk[3];
        s0 = n0;
        s1 = n1;
        s2 = n2;
        s3 = n3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
    const auto &sb = t.sbox;
    std::uint32_t f0 = (std::uint32_t(sb[(s0 >> 24) & 0xff]) << 24) |
                       (std::uint32_t(sb[(s1 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s2 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s3 & 0xff]);
    std::uint32_t f1 = (std::uint32_t(sb[(s1 >> 24) & 0xff]) << 24) |
                       (std::uint32_t(sb[(s2 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s3 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s0 & 0xff]);
    std::uint32_t f2 = (std::uint32_t(sb[(s2 >> 24) & 0xff]) << 24) |
                       (std::uint32_t(sb[(s3 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s0 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s1 & 0xff]);
    std::uint32_t f3 = (std::uint32_t(sb[(s3 >> 24) & 0xff]) << 24) |
                       (std::uint32_t(sb[(s0 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(sb[(s1 >> 8) & 0xff]) << 8) |
                       std::uint32_t(sb[s2 & 0xff]);

    storeBe32(out + 0, f0 ^ rk[0]);
    storeBe32(out + 4, f1 ^ rk[1]);
    storeBe32(out + 8, f2 ^ rk[2]);
    storeBe32(out + 12, f3 ^ rk[3]);
}

} // namespace crypto
} // namespace pipellm
