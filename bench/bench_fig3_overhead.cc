/**
 * @file
 * Figure 3: the confidential-computing overhead study (§3).
 *
 *  (a) FlexGen, OPT-66B model offloading: CC costs 82.8-88.2% of
 *      throughput.
 *  (b) vLLM, OPT-30B KV-cache swapping: normalized latency inflates
 *      with the request rate once swapping kicks in.
 *  (c) PEFT fine-tuning: 36.2% drop on OPT-30B, 14.0% on OPT-13B.
 */

#include <cinttypes>

#include "bench/bench_drivers.hh"

using namespace benchutil;

namespace {

void
fig3a()
{
    banner("Figure 3a: FlexGen OPT-66B serving throughput, w/o CC vs CC");
    auto csv = openCsv("fig3a_flexgen.csv");
    csv.header({"config", "mode", "tokens_per_sec", "drop_pct"});

    struct Cfg
    {
        std::uint32_t in, out;
    } cfgs[] = {{32, 128}, {256, 32}};

    auto model = llm::ModelConfig::opt66b();
    for (auto c : cfgs) {
        auto plain = runFlexGen(Mode::Plain, model, c.in, c.out, 128, 32);
        auto cc = runFlexGen(Mode::Cc, model, c.in, c.out, 128, 32);
        double drop = 100.0 * (1 - cc.tokens_per_sec /
                                       plain.tokens_per_sec);
        std::printf("in=%u out=%u: w/o CC %.1f tok/s | CC %.1f tok/s "
                    "| drop %.1f%% (paper: 82.8-88.2%%)\n",
                    c.in, c.out, plain.tokens_per_sec,
                    cc.tokens_per_sec, drop);
        char label[32];
        std::snprintf(label, sizeof(label), "in%u_out%u", c.in, c.out);
        csv.field(label).field("w/o CC").field(plain.tokens_per_sec)
            .field(0).endRow();
        csv.field(label).field("CC").field(cc.tokens_per_sec)
            .field(drop).endRow();
    }
}

void
fig3b()
{
    banner("Figure 3b: vLLM OPT-30B normalized latency vs request rate");
    auto csv = openCsv("fig3b_vllm.csv");
    csv.header({"rate_req_s", "mode", "norm_latency_s_tok",
                "preemptions"});

    auto model = llm::ModelConfig::opt30b();
    auto profile = trace::DatasetProfile::shareGpt();
    profile.max_len = 1024;

    for (double rate : {0.4, 0.8, 1.2, 1.6}) {
        for (Mode mode : {Mode::Plain, Mode::Cc}) {
            auto p = runVllm(mode, model, profile, 6, rate, 96);
            std::printf("rate %.1f req/s  %-8s norm latency %.3f "
                        "s/token  (preemptions %" PRIu64 ")\n",
                        rate, toString(mode), p.normalized_latency_s,
                        p.preemptions);
            csv.field(rate).field(toString(mode))
                .field(p.normalized_latency_s).field(p.preemptions)
                .endRow();
        }
    }
    std::printf("paper: similar at low rate; CC latency grows "
                "steeply once swap-in encryption stalls the GPU\n");
}

void
fig3c()
{
    banner("Figure 3c: PEFT LoRA fine-tuning throughput, w/o CC vs CC");
    auto csv = openCsv("fig3c_peft.csv");
    csv.header({"model", "mode", "tokens_per_sec", "drop_pct"});

    struct Cfg
    {
        llm::ModelConfig model;
        unsigned batch;
        double paper_drop;
    } cfgs[] = {
        {llm::ModelConfig::opt30b(), 5, 36.2},
        {llm::ModelConfig::opt13b(), 18, 14.0},
    };

    for (auto &c : cfgs) {
        auto plain = runPeft(Mode::Plain, c.model, c.batch, 192);
        auto cc = runPeft(Mode::Cc, c.model, c.batch, 192);
        double drop =
            100.0 * (1 - cc.tokens_per_sec / plain.tokens_per_sec);
        std::printf("%s (batch %u, %u offloaded layers): w/o CC %.0f "
                    "tok/s | CC %.0f tok/s | drop %.1f%% "
                    "(paper: %.1f%%)\n",
                    c.model.name.c_str(), c.batch,
                    plain.offloaded_layers, plain.tokens_per_sec,
                    cc.tokens_per_sec, drop, c.paper_drop);
        csv.field(c.model.name).field("w/o CC")
            .field(plain.tokens_per_sec).field(0).endRow();
        csv.field(c.model.name).field("CC").field(cc.tokens_per_sec)
            .field(drop).endRow();
    }
}

} // namespace

int
main()
{
    fig3a();
    fig3b();
    fig3c();
    return 0;
}
