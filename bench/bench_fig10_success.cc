/**
 * @file
 * Figure 10: ablation on prediction success rate (§7.4).
 *
 * vLLM, OPT-30B, Alpaca. The paper uses parallel sampling 2; our
 * simulated scheduler only builds KV pressure at parallel 6, so the
 * ablation runs there (the mechanism under test is identical).
 * "PipeLLM-0" forces the
 * *sequence* prediction success rate to zero (the predicted set stays
 * useful, its order is always wrong). The paper measures only an
 * ~8.3% drop versus full PipeLLM: re-ordering and NOP padding keep
 * the pre-encrypted data usable, and the extra demand-encryption
 * latency hides behind GPU compute.
 */

#include <cinttypes>

#include "bench/bench_drivers.hh"

using namespace benchutil;

int
main()
{
    banner("Figure 10: PipeLLM vs PipeLLM-0 (0% sequence-prediction "
           "success)");
    auto csv = openCsv("fig10_success.csv");
    csv.header({"rate", "mode", "norm_latency_s_tok", "overhead_pct",
                "hit_rate", "nops"});

    auto model = llm::ModelConfig::opt30b();
    auto alpaca = trace::DatasetProfile::alpaca();

    for (double rate : {20.0, 30.0, 40.0}) {
        double base = 0;
        double pipe_latency = 0;
        for (Mode mode :
             {Mode::Plain, Mode::Cc, Mode::Pipe, Mode::Pipe0}) {
            auto p = runVllm(mode, model, alpaca, 6, rate, 160);
            if (mode == Mode::Plain)
                base = p.normalized_latency_s;
            if (mode == Mode::Pipe)
                pipe_latency = p.normalized_latency_s;
            double overhead =
                100.0 * (p.normalized_latency_s / base - 1.0);
            std::printf("rate %5.1f  %-10s %.4f s/tok  (+%5.1f%% vs "
                        "w/o CC)",
                        rate, toString(mode), p.normalized_latency_s,
                        overhead);
            if (mode == Mode::Pipe0 && pipe_latency > 0) {
                std::printf("  [+%.1f%% vs PipeLLM; paper: ~8.3%%]",
                            100.0 * (p.normalized_latency_s /
                                         pipe_latency -
                                     1.0));
            }
            if (p.hit_rate >= 0)
                std::printf("  hit %.1f%% nops %" PRIu64,
                            100 * p.hit_rate, p.nops);
            std::printf("\n");
            csv.field(rate).field(toString(mode))
                .field(p.normalized_latency_s).field(overhead)
                .field(p.hit_rate).field(p.nops).endRow();
        }
    }
    return 0;
}
