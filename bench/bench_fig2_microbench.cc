/**
 * @file
 * Figure 2: host-to-device memcpy latency and throughput across I/O
 * sizes, with confidential computing disabled vs enabled.
 *
 * Paper values (H100-SXM): CC-disabled latency ~1.2-1.4 us flat and
 * 27-55 GB/s; CC-enabled latency grows linearly (14.9 us @ 32 B up to
 * 5252 us @ 32 MB) and throughput saturates at ~5.8 GB/s, bottlenecked
 * by single-thread CPU AES-GCM. A PipeLLM column is added to show the
 * steady-state pipelined rate on the same microbenchmark.
 */

#include <cinttypes>
#include <vector>

#include "bench/bench_common.hh"

using namespace benchutil;
using runtime::CopyKind;
using runtime::Stream;

namespace {

struct Point
{
    const char *label;
    std::uint64_t bytes;
};

const Point kSizes[] = {
    {"32B", 32},
    {"128KB", 128 * KiB},
    {"1MB", 1 * MiB},
    {"32MB", 32 * MiB},
};

struct Result
{
    double latency_us;
    double throughput_gbs;
};

Result
measure(Mode mode, std::uint64_t bytes)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel());
    auto pipe_cfg = offloadPipeConfig(llm::ModelConfig::opt66b());
    pipe_cfg.classifier.layer_param_bytes = bytes; // pipeline this size
    pipe_cfg.classifier.swap_threshold = 32;       // even small ones
    auto rt = makeRuntime(mode, platform, pipe_cfg);

    auto host = platform.allocHost(std::max(bytes, std::uint64_t(4096)),
                                   "src");
    auto dev = platform.gpu(0).alloc(
        std::max(bytes, std::uint64_t(4096)), "dst");
    Stream &s = rt->createStream("s");

    // Latency: mean API invocation-to-return over a few calls after
    // warmup (Fig. 2 measures the call latency, not completion).
    const int reps = 10000; // paper: throughput over 10K transfers
    Tick now = 0;
    double latency_sum = 0;
    int latency_n = 0;
    Tick first_submit = 0;
    for (int i = 0; i < reps; ++i) {
        Tick t0 = now;
        auto r = rt->memcpyAsync(CopyKind::HostToDevice, dev.base,
                                 host.base, bytes, s, now);
        now = r.api_return;
        if (i == 64)
            first_submit = t0;
        if (i >= 64) { // skip pipeline warmup
            latency_sum += toMicroseconds(r.api_return - t0);
            ++latency_n;
        }
    }
    Tick done = rt->synchronize(now);

    Result res;
    res.latency_us = latency_sum / latency_n;
    res.throughput_gbs =
        achievedRate(std::uint64_t(reps - 64) * bytes,
                     done - first_submit) /
        1e9;
    return res;
}

} // namespace

int
main()
{
    banner("Figure 2: H2D memcpy latency/throughput vs I/O size");
    auto csv = openCsv("fig2_microbench.csv");
    csv.header({"size", "mode", "latency_us", "throughput_GBps"});

    std::printf("%-8s %-10s %14s %18s\n", "size", "mode",
                "latency (us)", "throughput (GB/s)");
    for (const auto &p : kSizes) {
        for (Mode mode : {Mode::Plain, Mode::Cc, Mode::Pipe}) {
            auto r = measure(mode, p.bytes);
            bool tiny = p.bytes < 1024; // control-plane dominated
            std::printf("%-8s %-10s %14.2f %18s\n", p.label,
                        toString(mode), r.latency_us,
                        tiny ? "-"
                             : std::to_string(r.throughput_gbs)
                                   .substr(0, 5)
                                   .c_str());
            csv.field(p.label).field(toString(mode))
                .field(r.latency_us)
                .field(tiny ? 0.0 : r.throughput_gbs)
                .endRow();
        }
    }
    std::printf("\npaper (CC-disabled): latency ~1.2-1.4us flat, "
                "27-55 GB/s\n"
                "paper (CC-enabled):  14.9us@32B -> 5252us@32MB, "
                "3.3-5.8 GB/s\n");
    return 0;
}
