/**
 * @file
 * The paper's discussion section quantified (§8.2, §8.3): how would
 * PipeLLM compare against (a) a future CC interface that permits
 * ciphertext reuse for read-only swap data, and (b) TEE I/O hardware
 * with line-rate SoC encryption?
 *
 * Five systems on the same workloads: w/o CC, CC, PipeLLM, CT-Reuse
 * (§8.2; weaker replay protection by construction), TEE-I/O (§8.3;
 * hypothetical hardware). The expectation from the paper's text:
 * both alternatives bound PipeLLM from above, and PipeLLM approaches
 * them without new hardware or weakened security.
 */

#include <cinttypes>
#include <memory>

#include "bench/bench_drivers.hh"
#include "runtime/reuse_runtime.hh"
#include "runtime/teeio_runtime.hh"

using namespace benchutil;

namespace {

enum class Sys
{
    Plain,
    Cc,
    Pipe,
    Reuse,
    TeeIo,
};

const char *
name(Sys s)
{
    switch (s) {
      case Sys::Plain:
        return "w/o CC";
      case Sys::Cc:
        return "CC";
      case Sys::Pipe:
        return "PipeLLM";
      case Sys::Reuse:
        return "CT-Reuse";
      case Sys::TeeIo:
        return "TEE-I/O";
    }
    return "?";
}

std::unique_ptr<runtime::RuntimeApi>
make(Sys s, runtime::Platform &platform,
     const core::PipeLlmConfig &pipe_cfg)
{
    switch (s) {
      case Sys::Plain:
        return std::make_unique<runtime::PlainRuntime>(platform);
      case Sys::Cc:
        return std::make_unique<runtime::CcRuntime>(platform);
      case Sys::Pipe:
        return std::make_unique<core::PipeLlmRuntime>(platform,
                                                      pipe_cfg);
      case Sys::Reuse:
        return std::make_unique<runtime::CiphertextReuseRuntime>(
            platform);
      case Sys::TeeIo:
        return std::make_unique<runtime::TeeIoRuntime>(platform);
    }
    return nullptr;
}

void
flexgenComparison()
{
    banner("Future designs on FlexGen OPT-66B (read-only weights: "
           "the §8.2 sweet spot)");
    auto csv = openCsv("future_flexgen.csv");
    csv.header({"mode", "tokens_per_sec", "overhead_pct"});

    auto model = llm::ModelConfig::opt66b();
    serving::FlexGenConfig cfg;
    cfg.model = model;
    cfg.batch = 32;
    cfg.input_len = 32;
    cfg.output_len = 64;
    cfg.num_requests = 64;

    double base = 0;
    for (Sys s : {Sys::Plain, Sys::Cc, Sys::Pipe, Sys::Reuse,
                  Sys::TeeIo}) {
        runtime::Platform platform(gpu::SystemSpec::h100(),
                                   benchChannel());
        auto rt = make(s, platform, offloadPipeConfig(model));
        serving::FlexGenEngine engine(*rt, cfg);
        auto r = engine.run();
        if (s == Sys::Plain)
            base = r.tokens_per_sec;
        double overhead = 100.0 * (1 - r.tokens_per_sec / base);
        std::printf("%-9s %8.1f tok/s  overhead %5.1f%%",
                    name(s), r.tokens_per_sec, overhead);
        if (auto *p = dynamic_cast<runtime::CiphertextReuseRuntime *>(
                rt.get())) {
            const auto &rs = p->reuseStats();
            std::printf("  (seals %" PRIu64 ", reuse hits %" PRIu64
                        " -> each layer encrypted once)",
                        rs.seals, rs.reuse_hits);
        }
        std::printf("\n");
        csv.field(name(s)).field(r.tokens_per_sec).field(overhead)
            .endRow();
        PIPELLM_ASSERT(platform.gpu(0).integrityFailures() == 0,
                       "integrity failure");
    }
}

void
vllmComparison()
{
    banner("Future designs on vLLM OPT-30B (mutating KV: reuse only "
           "saves the decrypt side)");
    auto csv = openCsv("future_vllm.csv");
    csv.header({"rate", "mode", "norm_latency_s_tok", "overhead_pct"});

    auto model = llm::ModelConfig::opt30b();
    auto profile = trace::DatasetProfile::alpaca();
    serving::VllmConfig cfg;
    cfg.model = model;
    cfg.parallel_sampling = 6;
    std::uint64_t block_bytes =
        std::uint64_t(cfg.block_tokens) * model.kvBytesPerToken();

    for (double rate : {20.0, 40.0}) {
        double base = 0;
        for (Sys s : {Sys::Plain, Sys::Cc, Sys::Pipe, Sys::Reuse,
                      Sys::TeeIo}) {
            runtime::Platform platform(gpu::SystemSpec::h100(),
                                       benchChannel());
            auto rt = make(s, platform, kvPipeConfig(block_bytes));
            serving::VllmEngine engine(*rt, cfg);
            trace::TraceGenerator gen(profile, 42);
            auto r = engine.run(gen.poisson(160, rate));
            if (s == Sys::Plain)
                base = r.normalized_latency;
            double overhead =
                100.0 * (r.normalized_latency / base - 1.0);
            std::printf("rate %4.1f  %-9s %.4f s/tok  (+%5.1f%%)\n",
                        rate, name(s), r.normalized_latency, overhead);
            csv.field(rate).field(name(s)).field(r.normalized_latency)
                .field(overhead).endRow();
            PIPELLM_ASSERT(platform.gpu(0).integrityFailures() == 0,
                           "integrity failure");
        }
    }
    std::printf("\nCT-Reuse weakens replay protection (§8.2); TEE-I/O "
                "needs new hardware (§8.3). PipeLLM approaches both "
                "with neither.\n");
}

} // namespace

int
main()
{
    flexgenComparison();
    vllmComparison();
    return 0;
}
