/**
 * @file
 * Figure 8: vLLM KV-cache swapping with PipeLLM (§7.2).
 *
 * OPT-30B (weights resident, 75% of HBM) and OPT-13B (32.5%) serve
 * ShareGPT- and Alpaca-shaped traces with parallel sampling 2/4/6
 * across a request-rate sweep; the metric is normalized latency
 * (s/token). Paper: CC costs 33.3-52.8% on OPT-30B; PipeLLM cuts it
 * to 5.2-14.2% (<8% on OPT-13B), with near-100% prediction success.
 */

#include <cinttypes>

#include "bench/bench_drivers.hh"

using namespace benchutil;

namespace {

void
sweep(const llm::ModelConfig &model, const char *dataset_name,
      trace::DatasetProfile profile, unsigned parallel,
      const std::vector<double> &rates, std::size_t n_requests,
      CsvWriter &csv)
{
    std::printf("\n-- %s, %s, parallel sampling %u --\n",
                model.name.c_str(), dataset_name, parallel);
    for (double rate : rates) {
        double base = 0;
        for (Mode mode : {Mode::Plain, Mode::Cc, Mode::Pipe}) {
            auto p = runVllm(mode, model, profile, parallel, rate,
                             n_requests);
            if (mode == Mode::Plain)
                base = p.normalized_latency_s;
            double overhead =
                100.0 * (p.normalized_latency_s / base - 1.0);
            std::printf("rate %.2f  %-8s  %.4f s/tok  (+%5.1f%%)",
                        rate, toString(mode), p.normalized_latency_s,
                        overhead);
            if (p.hit_rate >= 0)
                std::printf("  hit %.1f%% nops %" PRIu64,
                            100 * p.hit_rate, p.nops);
            std::printf("\n");
            csv.field(model.name).field(dataset_name).field(parallel)
                .field(rate).field(toString(mode))
                .field(p.normalized_latency_s).field(overhead)
                .field(p.hit_rate).field(p.preemptions).endRow();
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // --quick: fewer points (used by CI-style smoke runs).
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";

    banner("Figure 8: vLLM normalized latency vs request rate");
    auto csv = openCsv("fig8_kvswap.csv");
    csv.header({"model", "dataset", "parallel", "rate", "mode",
                "norm_latency_s_tok", "overhead_pct", "hit_rate",
                "preemptions"});

    auto sharegpt = trace::DatasetProfile::shareGpt();
    sharegpt.max_len = 1024;
    auto alpaca = trace::DatasetProfile::alpaca();

    auto opt30b = llm::ModelConfig::opt30b();
    auto opt13b = llm::ModelConfig::opt13b();

    if (quick) {
        sweep(opt30b, "sharegpt", sharegpt, 6, {0.8, 1.2}, 64, csv);
        sweep(opt30b, "alpaca", alpaca, 6, {25.0}, 96, csv);
        return 0;
    }

    // OPT-30B: heavy KV pressure (the paper's headline subplots).
    for (unsigned parallel : {2u, 4u, 6u}) {
        // Higher parallel sampling saturates at lower request rates.
        std::vector<double> rates =
            parallel == 2 ? std::vector<double>{1.0, 2.0, 3.0}
                          : parallel == 4
                                ? std::vector<double>{0.6, 1.2, 1.8}
                                : std::vector<double>{0.4, 0.8, 1.2};
        sweep(opt30b, "sharegpt", sharegpt, parallel, rates, 96, csv);
    }
    // Alpaca's short requests tolerate much higher rates.
    for (unsigned parallel : {2u, 6u}) {
        std::vector<double> rates =
            parallel == 2 ? std::vector<double>{50.0, 80.0, 110.0}
                          : std::vector<double>{20.0, 30.0, 40.0};
        sweep(opt30b, "alpaca", alpaca, parallel, rates, 160, csv);
    }

    // OPT-13B: lighter memory pressure, smaller gaps (paper §7.2).
    sweep(opt13b, "sharegpt", sharegpt, 6, {4.0, 6.0, 8.0}, 96, csv);
    sweep(opt13b, "alpaca", alpaca, 6, {40.0, 70.0}, 160, csv);

    std::printf("\npaper: OPT-30B CC overhead 33.3-52.8%% -> PipeLLM "
                "5.2-14.2%%; OPT-13B CC 15.3-23.6%% (ShareGPT) / <8%% "
                "(Alpaca) -> PipeLLM <8%%\n");
    return 0;
}
