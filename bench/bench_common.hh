/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Each bench binary regenerates one of the paper's tables or figures:
 * it runs the full simulation for every (system, workload, parameter)
 * point, prints the same rows/series the paper reports, and writes a
 * CSV next to the binary's working directory under bench_results/.
 *
 * Absolute numbers come from the calibrated simulator; the *shape*
 * (who wins, by what factor, where curves diverge) is what reproduces
 * the paper. EXPERIMENTS.md records paper-vs-measured per figure.
 *
 * The system vocabulary (Mode enum, display names, runtime factory,
 * canonical PipeLLM configs) lives in scenario/mode.hh so .scenario
 * files and figure benches share one source of truth; this header
 * forwards the historical benchutil names.
 */

#ifndef PIPELLM_BENCH_BENCH_COMMON_HH
#define PIPELLM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/csv.hh"
#include "crypto/channel.hh"
#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"
#include "scenario/mode.hh"

namespace benchutil {

using namespace pipellm;

/** The systems compared across the evaluation (scenario/mode.hh). */
using Mode = scenario::SystemMode;

using scenario::kvPipeConfig;
using scenario::makeRuntime;
using scenario::offloadPipeConfig;
using scenario::toString;

/** Fast functional sampling for benches (timing is unaffected). */
inline crypto::ChannelConfig
benchChannel()
{
    crypto::ChannelConfig cfg;
    cfg.sample_limit = 512;
    return cfg;
}

/** Open a CSV under bench_results/, creating the directory. */
inline CsvWriter
openCsv(const std::string &name)
{
    std::filesystem::create_directories("bench_results");
    return CsvWriter("bench_results/" + name);
}

/** Section header on stdout. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace benchutil

#endif // PIPELLM_BENCH_BENCH_COMMON_HH
