/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Each bench binary regenerates one of the paper's tables or figures:
 * it runs the full simulation for every (system, workload, parameter)
 * point, prints the same rows/series the paper reports, and writes a
 * CSV next to the binary's working directory under bench_results/.
 *
 * Absolute numbers come from the calibrated simulator; the *shape*
 * (who wins, by what factor, where curves diverge) is what reproduces
 * the paper. EXPERIMENTS.md records paper-vs-measured per figure.
 */

#ifndef PIPELLM_BENCH_BENCH_COMMON_HH
#define PIPELLM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "common/csv.hh"
#include "llm/model.hh"
#include "pipellm/pipellm_runtime.hh"
#include "runtime/cc_runtime.hh"
#include "runtime/plain_runtime.hh"

namespace benchutil {

using namespace pipellm;

/** The systems compared across the evaluation. */
enum class Mode
{
    Plain,  ///< "w/o CC"
    Cc,     ///< NVIDIA CC, 1 crypto thread
    Cc4t,   ///< NVIDIA CC, 4 crypto threads (Fig. 9)
    Pipe,   ///< PipeLLM
    Pipe0,  ///< PipeLLM with 0% sequence-prediction success (Fig. 10)
};

inline const char *
toString(Mode m)
{
    switch (m) {
      case Mode::Plain:
        return "w/o CC";
      case Mode::Cc:
        return "CC";
      case Mode::Cc4t:
        return "CC-4t";
      case Mode::Pipe:
        return "PipeLLM";
      case Mode::Pipe0:
        return "PipeLLM-0";
    }
    return "?";
}

/** PipeLLM configuration for model-offloading workloads (§7.2). */
inline core::PipeLlmConfig
offloadPipeConfig(const llm::ModelConfig &model)
{
    core::PipeLlmConfig cfg;
    // Model offloading must out-encrypt the 40 GB/s copy path, so
    // PipeLLM dedicates multiple CPU threads (§7.2; the paper's VM
    // has 16 vCPUs).
    cfg.enc_lanes = 10;
    cfg.dec_lanes = 1;
    cfg.pipeline_depth = 12;
    cfg.max_pipeline_bytes = 32 * GiB;
    // Layer chunks are GB-sized (hundreds of ms per lane); the stable
    // repetitive plan justifies booking the lanes far ahead.
    cfg.max_lane_lead = seconds(1);
    cfg.classifier.layer_param_bytes = model.layerParamBytes();
    return cfg;
}

/** PipeLLM configuration for KV-cache swapping (vLLM: 1+1 threads). */
inline core::PipeLlmConfig
kvPipeConfig(std::uint64_t kv_unit_bytes)
{
    core::PipeLlmConfig cfg;
    cfg.enc_lanes = 1;
    cfg.dec_lanes = 1;
    // The pipeline must cover whole preempted groups (hundreds of KV
    // blocks) so they pre-encrypt during the out->in window.
    cfg.pipeline_depth = 512;
    cfg.max_pipeline_bytes = 16 * GiB;
    cfg.classifier.kv_unit_bytes = kv_unit_bytes;
    return cfg;
}

/** Instantiate the runtime for @p mode on @p platform's @p device. */
inline std::unique_ptr<runtime::RuntimeApi>
makeRuntime(Mode mode, runtime::Platform &platform,
            const core::PipeLlmConfig &pipe_cfg,
            runtime::DeviceId device = 0)
{
    switch (mode) {
      case Mode::Plain:
        return std::make_unique<runtime::PlainRuntime>(platform,
                                                       device);
      case Mode::Cc:
        return std::make_unique<runtime::CcRuntime>(platform, 1,
                                                    device);
      case Mode::Cc4t:
        return std::make_unique<runtime::CcRuntime>(platform, 4,
                                                    device);
      case Mode::Pipe:
        return std::make_unique<core::PipeLlmRuntime>(platform,
                                                      pipe_cfg,
                                                      device);
      case Mode::Pipe0: {
        auto cfg = pipe_cfg;
        cfg.predictor.sabotage_sequence = true;
        return std::make_unique<core::PipeLlmRuntime>(platform, cfg,
                                                      device);
      }
    }
    return nullptr;
}

/** Fast functional sampling for benches (timing is unaffected). */
inline crypto::ChannelConfig
benchChannel()
{
    crypto::ChannelConfig cfg;
    cfg.sample_limit = 512;
    return cfg;
}

/** Open a CSV under bench_results/, creating the directory. */
inline CsvWriter
openCsv(const std::string &name)
{
    std::filesystem::create_directories("bench_results");
    return CsvWriter("bench_results/" + name);
}

/** Section header on stdout. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace benchutil

#endif // PIPELLM_BENCH_BENCH_COMMON_HH
