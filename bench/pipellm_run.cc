/**
 * @file
 * pipellm_run: the one driver binary for declarative scenarios.
 *
 * Every experiment the legacy bench_cluster_scale / bench_faults /
 * bench_soak mains hard-coded now lives in a committed .scenario file
 * under bench/scenarios/; this driver loads any number of them and
 * runs their sweep matrices through scenario::runScenario. Adding a
 * sweep point (a 5th replica count, another fault scale) is a
 * scenario-file edit — no C++ changes, no new binary.
 *
 *   pipellm_run bench/scenarios/cluster_scale.scenario
 *   pipellm_run --quick cluster_scale faults soak
 *   pipellm_run --validate my_new_sweep.scenario
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/scenario_cli.hh"

namespace {

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--quick] [--threads N] [--out DIR] [--validate] "
        "[--dump] <scenario>...\n"
        "       %s --list\n"
        "  <scenario>   a .scenario file, or a bare name resolved\n"
        "               against the repo's bench/scenarios/\n"
        "  --quick      use the *_quick sweep axes (CI smoke)\n"
        "  --threads N  co-simulation workers (0 = hardware\n"
        "               concurrency); wall-clock only, CSVs are\n"
        "               byte-identical for every value\n"
        "  --out DIR    CSV output directory (default bench_results)\n"
        "  --validate   parse + validate only, run nothing\n"
        "  --dump       print the canonical round-trip text, run\n"
        "               nothing\n"
        "  --list       list scenario kinds and committed scenarios\n",
        prog, prog);
    return 2;
}

int
listScenarios()
{
    std::printf("scenario kinds:\n");
    for (const auto &info : pipellm::scenario::scenarioKinds())
        std::printf("  %-14s %s\n", info.name, info.summary);

    std::printf("\ncommitted scenarios (%s):\n", PIPELLM_SCENARIO_DIR);
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : std::filesystem::directory_iterator(
             PIPELLM_SCENARIO_DIR, ec)) {
        if (entry.path().extension() == ".scenario")
            names.push_back(entry.path().filename().string());
    }
    if (ec) {
        std::fprintf(stderr, "cannot list %s: %s\n",
                     PIPELLM_SCENARIO_DIR, ec.message().c_str());
        return 1;
    }
    std::sort(names.begin(), names.end());
    for (const auto &name : names) {
        auto spec = benchutil::loadScenarioOrDie(
            std::string(PIPELLM_SCENARIO_DIR) + "/" + name);
        std::printf("  %-24s kind %s\n", name.c_str(),
                    pipellm::scenario::toString(spec.kind));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    pipellm::scenario::RunOptions opts;
    opts.progress = benchutil::printingSink();
    bool validate_only = false;
    bool dump_only = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out_dir = argv[++i];
        } else if (arg == "--validate") {
            validate_only = true;
        } else if (arg == "--dump") {
            dump_only = true;
        } else if (arg == "--list") {
            return listScenarios();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage(argv[0]);

    for (const auto &file : files) {
        std::string path = benchutil::resolveScenarioPath(file);
        auto spec = benchutil::loadScenarioOrDie(path);
        if (dump_only) {
            std::fputs(pipellm::scenario::dumpScenario(spec).c_str(),
                       stdout);
            continue;
        }
        if (validate_only) {
            std::printf("%s: OK (%s, kind %s)\n", path.c_str(),
                        spec.name.c_str(),
                        pipellm::scenario::toString(spec.kind));
            continue;
        }
        auto summary = pipellm::scenario::runScenario(spec, opts);
        std::printf("scenario %s: %zu runs, %zu rows\n",
                    spec.name.c_str(), summary.runs, summary.rows);
        for (const auto &csv : summary.csv_paths)
            std::printf("  wrote %s\n", csv.c_str());
    }
    return 0;
}
