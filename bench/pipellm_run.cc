/**
 * @file
 * pipellm_run: the one driver binary for declarative scenarios.
 *
 * Every experiment the legacy bench_cluster_scale / bench_faults /
 * bench_soak mains hard-coded now lives in a committed .scenario file
 * under bench/scenarios/; this driver loads any number of them and
 * runs their sweep matrices through scenario::runScenario. Adding a
 * sweep point (a 5th replica count, another fault scale) is a
 * scenario-file edit — no C++ changes, no new binary.
 *
 *   pipellm_run bench/scenarios/cluster_scale.scenario
 *   pipellm_run --quick cluster_scale faults soak
 *   pipellm_run --validate my_new_sweep.scenario
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/scenario_cli.hh"

namespace {

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s [--quick] [--threads N] [--out DIR] [--validate] "
        "<scenario>...\n"
        "  <scenario>   a .scenario file, or a bare name resolved\n"
        "               against the repo's bench/scenarios/\n"
        "  --quick      use the *_quick sweep axes (CI smoke)\n"
        "  --threads N  co-simulation workers (0 = hardware\n"
        "               concurrency); wall-clock only, CSVs are\n"
        "               byte-identical for every value\n"
        "  --out DIR    CSV output directory (default bench_results)\n"
        "  --validate   parse + validate only, run nothing\n",
        prog);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    pipellm::scenario::RunOptions opts;
    opts.progress = benchutil::printingSink();
    bool validate_only = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out_dir = argv[++i];
        } else if (arg == "--validate") {
            validate_only = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage(argv[0]);

    for (const auto &file : files) {
        std::string path = benchutil::resolveScenarioPath(file);
        auto spec = benchutil::loadScenarioOrDie(path);
        if (validate_only) {
            std::printf("%s: OK (%s, kind %s)\n", path.c_str(),
                        spec.name.c_str(),
                        pipellm::scenario::toString(spec.kind));
            continue;
        }
        auto summary = pipellm::scenario::runScenario(spec, opts);
        std::printf("scenario %s: %zu runs, %zu rows\n",
                    spec.name.c_str(), summary.runs, summary.rows);
        for (const auto &csv : summary.csv_paths)
            std::printf("  wrote %s\n", csv.c_str());
    }
    return 0;
}
