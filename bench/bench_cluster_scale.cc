/**
 * @file
 * Thin wrapper: the cluster-scaling figure, scenario-driven.
 *
 * The topology, trace, host variants and sweep axes that used to be
 * hard-coded here live in bench/scenarios/cluster_scale.scenario;
 * this main keeps the historical CLI (--quick, --threads) and runs
 * the scenario through the shared sweep runner. See the scenario file
 * for the experiment's rationale; the regenerated CSV is
 * byte-identical to what the hand-rolled main produced.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/scenario_cli.hh"

int
main(int argc, char **argv)
{
    // --quick: fewer devices and requests (CI-style smoke runs).
    // --threads N: co-simulation workers (0 = hardware concurrency).
    // The thread count is a wall-clock knob only; the CSV is
    // byte-identical for every value.
    pipellm::scenario::RunOptions opts;
    opts.progress = benchutil::printingSink();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            opts.quick = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            opts.threads = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--threads N]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("\n=== Cluster scaling: N replicas, offered load ~ N "
                "===\n");
    auto spec = benchutil::loadScenarioOrDie(
        benchutil::resolveScenarioPath("cluster_scale"));
    pipellm::scenario::runScenario(spec, opts);

    std::printf("\nexpectation: with private host resources w/o CC "
                "and PipeLLM track the offered load (near-linear) and "
                "stock CC is capped at N x its per-device "
                "crypto-bound service rate; on the shared host every "
                "mode knees as the crypto pool and bridge saturate, "
                "CC earliest and hardest, PipeLLM in between\n");
    return 0;
}
