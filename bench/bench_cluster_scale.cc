/**
 * @file
 * Cluster scaling: N vLLM replicas behind the router, offered load
 * scaled with N.
 *
 * Each device serves OPT-30B (ShareGPT, parallel sampling 6) and the
 * cluster-wide Poisson rate is 0.8 req/s per device — past stock CC's
 * crypto-bound service capacity at this working set (Figure 8) but
 * comfortably inside plain and PipeLLM capacity. Plain and PipeLLM
 * therefore keep pace with the offered load as N grows, while CC's
 * served throughput is capped at N times its per-device crypto-bound
 * rate and its normalized latency sits in the saturated regime.
 *
 * The sweep runs twice: once with private per-device host resources
 * (the historical configuration; rows carry host_mode=private) and
 * once on a contended shared host — a machine-wide CPU crypto lane
 * pool plus a PCIe host bridge all links drain through. Shared rows
 * expose the scaling knee: replicas that were independent under
 * private resources now queue against each other, so CC goes
 * sub-linear well before N=8 while PipeLLM's speculative
 * pre-encryption soaks up part of the contention off the critical
 * path.
 */

#include <cinttypes>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "serving/cluster.hh"
#include "trace/generator.hh"

using namespace benchutil;

namespace {

constexpr double ratePerDevice = 0.8;

/**
 * The contended shared-host configuration: a 2-lane machine-wide
 * crypto pool (each CC/PipeLLM replica wants 1 enc + 1 dec lane, so
 * two replicas already oversubscribe it 2:1) and a 160 GB/s host
 * bridge (~3 of the 55 GB/s per-device links; binds from N=4 up).
 */
runtime::HostResources
sharedHost()
{
    runtime::HostResources host;
    host.shared_crypto_lanes = 2;
    host.bridge_bw = 160e9;
    return host;
}

serving::ClusterResult
runCluster(Mode mode, unsigned n_devices, std::size_t n_requests,
           serving::RoutePolicy policy,
           const runtime::HostResources &host, unsigned threads)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel(),
                               n_devices, host);

    serving::ClusterConfig cfg;
    cfg.engine.model = llm::ModelConfig::opt30b();
    cfg.engine.parallel_sampling = 6;
    cfg.policy = policy;
    cfg.threads = threads;

    std::uint64_t block_bytes =
        std::uint64_t(cfg.engine.block_tokens) *
        cfg.engine.model.kvBytesPerToken();
    auto pipe_cfg = kvPipeConfig(block_bytes);
    if (host.shared_crypto_lanes > 0) {
        // On a contended pool a deep speculative lead books shared
        // lanes far ahead of everyone's demand traffic and queues the
        // whole host behind pre-encryption; keep speculation
        // just-in-time instead.
        pipe_cfg.max_lane_lead = milliseconds(10);
    }

    serving::ClusterRouter router(
        platform,
        [mode, &pipe_cfg](runtime::Platform &p,
                          runtime::DeviceId device) {
            return makeRuntime(mode, p, pipe_cfg, device);
        },
        cfg);

    auto profile = trace::DatasetProfile::shareGpt();
    profile.max_len = 1024;
    trace::TraceGenerator gen(profile, 42);
    auto result =
        router.run(gen.poisson(n_requests, ratePerDevice * n_devices));

    for (unsigned d = 0; d < n_devices; ++d)
        PIPELLM_ASSERT(platform.gpu(d).integrityFailures() == 0,
                       "integrity failure on device ", d);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    // --quick: fewer devices and requests (CI-style smoke runs).
    // --threads N: co-simulation workers (0 = hardware concurrency).
    // The thread count is a wall-clock knob only; the CSV is
    // byte-identical for every value.
    bool quick = false;
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = unsigned(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--threads N]\n",
                         argv[0]);
            return 2;
        }
    }

    banner("Cluster scaling: N replicas, offered load ~ N");
    auto csv = openCsv("cluster_scale.csv");
    csv.header({"n_devices", "mode", "policy", "offered_rate",
                "tokens_per_s", "speedup_vs_1dev", "norm_latency_s_tok",
                "p90_norm_latency_s_tok", "completed", "preemptions",
                "makespan_s", "replica", "replica_requests",
                "replica_tokens_per_s", "replica_norm_latency_s_tok",
                "replica_h2d_gb", "replica_cpu_crypto_gb", "host_mode",
                "shared_lanes", "bridge_gbps"});

    std::vector<unsigned> device_counts =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};
    std::size_t requests_per_device = quick ? 24 : 48;
    auto policy = serving::RoutePolicy::RoundRobin;

    struct HostVariant {
        const char *name;
        runtime::HostResources res;
    };
    const HostVariant variants[] = {
        {"private", runtime::HostResources{}},
        {"shared", sharedHost()},
    };

    for (const auto &variant : variants) {
        for (Mode mode : {Mode::Plain, Mode::Cc, Mode::Pipe}) {
            double base_tps = 0;
            std::printf("\n-- %s (%s routing, %s host) --\n",
                        toString(mode), serving::toString(policy),
                        variant.name);
            for (unsigned n : device_counts) {
                auto r = runCluster(mode, n, requests_per_device * n,
                                    policy, variant.res, threads);
                if (n == 1)
                    base_tps = r.tokens_per_sec;
                double speedup =
                    base_tps > 0 ? r.tokens_per_sec / base_tps : 0;
                std::printf("N=%u  %8.1f tok/s  (x%.2f)  %.4f s/tok  "
                            "p90 %.4f  completed %" PRIu64 "\n",
                            n, r.tokens_per_sec, speedup,
                            r.normalized_latency,
                            r.p90_normalized_latency, r.completed);
                for (const auto &rep : r.replicas) {
                    double rep_tps =
                        rep.result.total_time
                            ? double(rep.routed_tokens) /
                                  toSeconds(rep.result.total_time)
                            : 0;
                    csv.field(n).field(toString(mode))
                        .field(serving::toString(policy))
                        .field(ratePerDevice * n)
                        .field(r.tokens_per_sec)
                        .field(speedup).field(r.normalized_latency)
                        // Historical column: the completed-weighted
                        // mean of replica p90s, kept so the committed
                        // CSV stays byte-identical (the true merged
                        // p90 lives in p90_normalized_latency).
                        .field(r.replica_weighted_p90)
                        .field(r.completed).field(r.preemptions)
                        .field(toSeconds(r.makespan)).field(rep.device)
                        .field(rep.requests).field(rep_tps)
                        .field(rep.result.normalized_latency)
                        .field(double(rep.runtime_stats.h2d_bytes) /
                               1e9)
                        .field(
                            double(rep.runtime_stats.cpu_encrypt_bytes +
                                   rep.runtime_stats
                                       .cpu_decrypt_bytes) /
                            1e9)
                        .field(variant.name)
                        .field(variant.res.shared_crypto_lanes)
                        .field(variant.res.bridge_bw / 1e9)
                        .endRow();
                }
            }
        }
    }

    std::printf("\nexpectation: with private host resources w/o CC "
                "and PipeLLM track the offered load (near-linear "
                "1->%u) and stock CC is capped at N x its per-device "
                "crypto-bound service rate; on the shared host every "
                "mode knees as the crypto pool and bridge saturate, "
                "CC earliest and hardest, PipeLLM in between\n",
                device_counts.back());
    return 0;
}
