/**
 * @file
 * End-to-end experiment drivers shared by the figure benches: run one
 * (system, model, workload) point through the full simulation and
 * return the paper's metric.
 */

#ifndef PIPELLM_BENCH_BENCH_DRIVERS_HH
#define PIPELLM_BENCH_BENCH_DRIVERS_HH

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "serving/flexgen.hh"
#include "serving/peft.hh"
#include "serving/vllm.hh"
#include "trace/generator.hh"

namespace benchutil {

/** One FlexGen throughput point (Fig. 3a / Fig. 7). */
struct FlexGenPoint
{
    double tokens_per_sec = 0;
    unsigned offloaded_layers = 0;
    double hit_rate = -1; // PipeLLM only
};

inline FlexGenPoint
runFlexGen(Mode mode, const llm::ModelConfig &model,
           std::uint32_t input_len, std::uint32_t output_len,
           unsigned requests, unsigned batch)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel());
    auto rt = makeRuntime(mode, platform, offloadPipeConfig(model));

    serving::FlexGenConfig cfg;
    cfg.model = model;
    cfg.batch = batch;
    cfg.input_len = input_len;
    cfg.output_len = output_len;
    cfg.num_requests = requests;

    serving::FlexGenEngine engine(*rt, cfg);
    auto result = engine.run();

    FlexGenPoint point;
    point.tokens_per_sec = result.tokens_per_sec;
    point.offloaded_layers = result.offloaded_layers;
    if (auto *p = dynamic_cast<core::PipeLlmRuntime *>(rt.get())) {
        const auto &ps = p->pipeStats();
        if (ps.swap_requests > 0)
            point.hit_rate = double(ps.hits) / double(ps.swap_requests);
    }
    PIPELLM_ASSERT(platform.gpu(0).integrityFailures() == 0,
                   "integrity failure during bench");
    return point;
}

/** One vLLM serving point (Fig. 3b / Fig. 8 / 9 / 10). */
struct VllmPoint
{
    double normalized_latency_s = 0;
    std::uint64_t preemptions = 0;
    double swap_gb = 0;
    double hit_rate = -1;
    std::uint64_t nops = 0;
};

inline VllmPoint
runVllm(Mode mode, const llm::ModelConfig &model,
        const trace::DatasetProfile &profile, unsigned parallel,
        double rate, std::size_t n_requests, std::uint64_t seed = 42)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel());

    serving::VllmConfig cfg;
    cfg.model = model;
    cfg.parallel_sampling = parallel;

    std::uint64_t block_bytes =
        std::uint64_t(cfg.block_tokens) * model.kvBytesPerToken();
    auto rt = makeRuntime(mode, platform, kvPipeConfig(block_bytes));

    serving::VllmEngine engine(*rt, cfg);
    trace::TraceGenerator gen(profile, seed);
    auto result = engine.run(gen.poisson(n_requests, rate));

    VllmPoint point;
    point.normalized_latency_s = result.normalized_latency;
    point.preemptions = result.preemptions;
    point.swap_gb =
        double(result.swap_in_bytes + result.swap_out_bytes) / 1e9;
    if (auto *p = dynamic_cast<core::PipeLlmRuntime *>(rt.get())) {
        const auto &ps = p->pipeStats();
        if (ps.swap_requests > 0)
            point.hit_rate = double(ps.hits) / double(ps.swap_requests);
        point.nops = ps.nops;
    }
    PIPELLM_ASSERT(platform.gpu(0).integrityFailures() == 0,
                   "integrity failure during bench");
    return point;
}

/** One PEFT fine-tuning point (Fig. 3c / Fig. 7). */
struct PeftPoint
{
    double tokens_per_sec = 0;
    unsigned offloaded_layers = 0;
};

inline PeftPoint
runPeft(Mode mode, const llm::ModelConfig &model, unsigned batch,
        unsigned sequences)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel());
    auto rt = makeRuntime(mode, platform, offloadPipeConfig(model));

    serving::PeftConfig cfg;
    cfg.model = model;
    cfg.batch = batch;
    cfg.num_sequences = sequences;

    serving::PeftEngine engine(*rt, cfg);
    trace::TraceGenerator gen(trace::DatasetProfile::ultrachat(), 7);
    auto result = engine.run(gen.closedLoop(sequences));

    PeftPoint point;
    point.tokens_per_sec = result.tokens_per_sec;
    point.offloaded_layers = result.offloaded_layers;
    PIPELLM_ASSERT(platform.gpu(0).integrityFailures() == 0,
                   "integrity failure during bench");
    return point;
}

} // namespace benchutil

#endif // PIPELLM_BENCH_BENCH_DRIVERS_HH
