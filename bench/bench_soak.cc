/**
 * @file
 * Chaos soak + overload sweep (tools/chaos harness).
 *
 * Part 1 replays the standard chaos mix — calm / 4x burst / calm
 * arrivals, a fault storm window, seeded crashes with restarts armed
 * — and *asserts* the two soak invariants: the invariant auditor
 * stayed silent (when compiled in, any violation traps mid-run) and
 * windowed goodput climbed back above the recovery bar after every
 * disturbance. CI runs this under -DPIPELLM_AUDIT=ON and the
 * sanitizers via --quick.
 *
 * Part 2 sweeps arrival-rate overload with admission control off vs
 * on: without shedding, p90 normalized latency grows without bound
 * as the backlog deepens; with shedding plus the outstanding-cost
 * cap, p90 stays bounded while the shed tokens are reported honestly
 * next to goodput (shed work is *not* goodput).
 *
 * Outputs: soak.csv (goodput timeline), soak_disturbances.csv (dip
 * metrics per disturbance), soak_overload.csv (the sweep).
 */

#include <cinttypes>
#include <string>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "tools/chaos/chaos.hh"

using namespace benchutil;

namespace {

void
runChaosSoak(bool quick)
{
    banner("Chaos soak: crashes + restarts + storm + burst on one "
           "seeded timeline");
    auto plan = chaos::defaultSoakPlan(quick);
    auto result = chaos::runSoak(plan);
    const auto &c = result.cluster;
    const auto &f = c.faults;

    std::printf("completed %" PRIu64 "  goodput %.1f tok/s  "
                "slo-goodput %.1f tok/s  true p90 %.4f s/tok\n",
                c.completed, c.goodput_tokens_per_sec,
                c.slo_goodput_tokens_per_sec,
                c.p90_normalized_latency);
    std::printf("crashes %" PRIu64 "  restarts %" PRIu64
                "  mean rejoin %.2f s  requeued %" PRIu64
                "  shed %" PRIu64 " (%" PRIu64 " tok)  deferred %"
                PRIu64 "\n",
                f.replica_crashes, f.replica_restarts,
                f.replica_restarts
                    ? toSeconds(f.restart_rejoin_ticks) /
                          double(f.replica_restarts)
                    : 0.0,
                f.requeued_requests, c.shed_requests, c.shed_tokens,
                c.deferred_to_rejoin);

    auto csv = openCsv("soak.csv");
    csv.header({"window_start_s", "window_end_s",
                "goodput_tok_per_s"});
    for (const auto &w : result.timeline) {
        csv.field(toSeconds(w.start)).field(toSeconds(w.end))
            .field(w.tokens_per_sec).endRow();
    }

    auto dcsv = openCsv("soak_disturbances.csv");
    dcsv.header({"disturbance", "at_s", "baseline_tok_per_s",
                 "min_tok_per_s", "dip_depth", "dip_duration_s",
                 "recovered", "recovery_at_s"});
    for (const auto &d : result.disturbances) {
        std::printf("  %-10s at %6.2f s  baseline %8.1f  min %8.1f  "
                    "depth %.2f  below-bar %.2f s  %s\n",
                    d.what.c_str(), toSeconds(d.at),
                    d.dip.baseline_tps, d.dip.min_tps,
                    d.dip.dip_depth, toSeconds(d.dip.dip_duration),
                    d.dip.recovered ? "recovered" : "NOT RECOVERED");
        dcsv.field(d.what).field(toSeconds(d.at))
            .field(d.dip.baseline_tps).field(d.dip.min_tps)
            .field(d.dip.dip_depth)
            .field(toSeconds(d.dip.dip_duration))
            .field(d.dip.recovered ? 1 : 0)
            .field(toSeconds(d.dip.recovery_at)).endRow();
    }

    // The soak's two invariants. The auditor would already have
    // trapped mid-run on any violation; the count is belt and braces.
    PIPELLM_ASSERT(result.audit_violations == 0,
                   "invariant auditor recorded ",
                   result.audit_violations, " violations");
    PIPELLM_ASSERT(result.allRecovered(),
                   "goodput did not recover after every disturbance");
    std::printf("soak invariants held: auditor silent, goodput "
                "recovered after all %zu disturbances\n",
                result.disturbances.size());
}

void
runOverloadSweep(bool quick)
{
    banner("Overload sweep: p90 and shed accounting, admission off "
           "vs on");
    auto csv = openCsv("soak_overload.csv");
    csv.header({"rate_multiplier", "shed", "requests", "completed",
                "shed_requests", "shed_tokens", "slo_missed",
                "goodput_tok_per_s", "slo_goodput_tok_per_s",
                "norm_latency_s_tok", "p90_norm_latency_s_tok",
                "backpressure_deferrals", "makespan_s"});

    std::size_t n_requests = quick ? 24 : 64;
    std::vector<double> multipliers =
        quick ? std::vector<double>{1, 4} :
                std::vector<double>{1, 2, 4, 8};
    for (bool shed : {false, true}) {
        for (double mult : multipliers) {
            auto plan = chaos::defaultSoakPlan(quick);
            // Pure overload: no faults, one phase at the swept rate.
            plan.faults = fault::FaultPlan{};
            plan.phases = {chaos::SoakPhase{
                n_requests, mult * 0.8 * plan.n_devices}};
            // The soak's lenient SLO never binds; the sweep wants a
            // deadline on the scale of the x1 latency so the deeper
            // backlogs actually miss it and shedding has a job. The
            // service estimate is calibrated near the measured
            // cost-retirement rate so x1 admits nearly everything.
            plan.slo_floor = seconds(1);
            plan.slo_per_token = milliseconds(10);
            plan.admission.service_cost_per_sec = 4000;
            plan.admission.shed_enabled = shed;
            if (!shed)
                plan.admission.max_outstanding_cost = 0;
            auto r = chaos::runSoak(plan);
            const auto &c = r.cluster;
            std::printf("x%-4.1f shed=%d  completed %4" PRIu64
                        "  shed %3" PRIu64 "  p90 %8.4f s/tok  "
                        "goodput %8.1f  slo-goodput %8.1f\n",
                        mult, shed ? 1 : 0, c.completed,
                        c.shed_requests, c.p90_normalized_latency,
                        c.goodput_tokens_per_sec,
                        c.slo_goodput_tokens_per_sec);
            csv.field(mult).field(shed ? 1 : 0).field(n_requests)
                .field(c.completed).field(c.shed_requests)
                .field(c.shed_tokens).field(c.slo_missed)
                .field(c.goodput_tokens_per_sec)
                .field(c.slo_goodput_tokens_per_sec)
                .field(c.normalized_latency)
                .field(c.p90_normalized_latency)
                .field(c.backpressure_deferrals)
                .field(toSeconds(c.makespan)).endRow();
        }
    }
    std::printf("\nexpectation: with shedding off, p90 grows with "
                "the rate multiplier as the backlog deepens; with "
                "shedding on, p90 stays near the x1 line while the "
                "shed-token column reports the price honestly\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    runChaosSoak(quick);
    runOverloadSweep(quick);
    return 0;
}
