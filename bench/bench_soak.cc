/**
 * @file
 * Thin wrapper: the chaos soak + overload sweep, scenario-driven.
 *
 * The phased trace, fault storm, admission/SLO configuration and
 * overload multipliers that used to be hard-coded here live in
 * bench/scenarios/soak.scenario; this main keeps the historical CLI
 * (--quick) and runs the scenario through the shared sweep runner,
 * which still *asserts* the two soak invariants: the invariant
 * auditor stayed silent and windowed goodput climbed back above the
 * recovery bar after every disturbance. CI runs this under
 * -DPIPELLM_AUDIT=ON and the sanitizers via --quick.
 */

#include <cstdio>
#include <string>

#include "bench/scenario_cli.hh"

int
main(int argc, char **argv)
{
    pipellm::scenario::RunOptions opts;
    opts.progress = benchutil::printingSink();
    opts.quick = argc > 1 && std::string(argv[1]) == "--quick";

    std::printf("\n=== Chaos soak: crashes + restarts + storm + burst "
                "on one seeded timeline ===\n");
    auto spec = benchutil::loadScenarioOrDie(
        benchutil::resolveScenarioPath("soak"));
    pipellm::scenario::runScenario(spec, opts);

    std::printf("\nexpectation: with shedding off, p90 grows with "
                "the rate multiplier as the backlog deepens; with "
                "shedding on, p90 stays near the x1 line while the "
                "shed-token column reports the price honestly\n");
    return 0;
}
