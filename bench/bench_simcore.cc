/**
 * @file
 * Wall-clock microbenchmarks of the simulator's own building blocks
 * (google-benchmark). These measure the *reproduction's* performance,
 * not the paper's: AES-GCM sealing, GHASH, the event queue, resource
 * booking, and sparse-memory access — the per-simulated-transfer
 * costs that bound how large an experiment the harness can run.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/channel.hh"
#include "crypto/gcm.hh"
#include "mem/sparse_memory.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

using namespace pipellm;

namespace {

void
BM_AesGcmSeal(benchmark::State &state)
{
    std::vector<std::uint8_t> key(32, 0x42);
    crypto::AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> pt(state.range(0), 0xab);
    std::vector<std::uint8_t> ct(pt.size());
    crypto::GcmTag tag;
    crypto::GcmIv iv{};
    std::uint64_t n = 0;
    for (auto _ : state) {
        iv[11] = std::uint8_t(n++);
        gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(512)->Arg(4096)->Arg(65536);

void
BM_AesGcmOpen(benchmark::State &state)
{
    std::vector<std::uint8_t> key(32, 0x42);
    crypto::AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> pt(state.range(0), 0xab);
    std::vector<std::uint8_t> ct(pt.size());
    crypto::GcmTag tag;
    crypto::GcmIv iv{};
    gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
    std::vector<std::uint8_t> out(pt.size());
    for (auto _ : state) {
        bool ok = gcm.open(iv, nullptr, 0, ct.data(), ct.size(), tag,
                           out.data());
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesGcmOpen)->Arg(512)->Arg(4096);

void
BM_ChannelSealedTransfer(benchmark::State &state)
{
    crypto::ChannelConfig cfg;
    cfg.sample_limit = 512;
    crypto::SecureChannel ch(cfg);
    std::vector<std::uint8_t> sample(512, 0x17);
    std::uint64_t iv = 0;
    for (auto _ : state) {
        auto blob = ch.seal(crypto::Direction::HostToDevice, iv,
                            sample.data(), 32 * MiB);
        std::vector<std::uint8_t> out;
        bool ok = ch.open(blob, iv, out);
        benchmark::DoNotOptimize(ok);
        ++iv;
    }
}
BENCHMARK(BM_ChannelSealedTransfer);

void
BM_EventQueueSchedule(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(Tick(i), [] {});
        eq.run();
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_ResourceBooking(benchmark::State &state)
{
    sim::EventQueue eq;
    sim::BandwidthResource link(eq, "link", 55e9, 400);
    for (auto _ : state) {
        Tick t = link.submit(1 * MiB);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_ResourceBooking);

void
BM_SparseMemoryWrite(benchmark::State &state)
{
    mem::SparseMemory arena("bench", 16 * GiB);
    auto r = arena.alloc(1 * GiB, "buf");
    std::vector<std::uint8_t> data(4096, 0x5c);
    std::uint64_t off = 0;
    for (auto _ : state) {
        arena.write(r.base + (off % (512 * MiB)), data.data(),
                    data.size());
        off += 4096;
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) * 4096);
}
BENCHMARK(BM_SparseMemoryWrite);

void
BM_SparseMemorySyntheticRead(benchmark::State &state)
{
    mem::SparseMemory arena("bench", 400 * GiB);
    auto r = arena.alloc(300 * GiB, "weights");
    std::vector<std::uint8_t> out(512);
    std::uint64_t off = 0;
    for (auto _ : state) {
        arena.read(r.base + (off % (200 * GiB)), out.data(),
                   out.size());
        off += 1 * GiB;
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) * 512);
}
BENCHMARK(BM_SparseMemorySyntheticRead);

} // namespace

BENCHMARK_MAIN();
