/**
 * @file
 * Wall-clock microbenchmarks of the simulator's own building blocks
 * (google-benchmark), plus a throughput sweep of the sharded scheduler
 * core. These measure the *reproduction's* performance, not the
 * paper's: AES-GCM sealing, GHASH, the event queue, resource booking,
 * sparse-memory access — the per-simulated-transfer costs that bound
 * how large an experiment the harness can run — and how event
 * dispatch scales when replica shards run on a worker pool.
 *
 * The sweep writes bench_results/BENCH_simcore.json. Unlike the
 * figure CSVs, BENCH_*.json files record *host* wall-clock numbers:
 * they are machine-dependent by design, annotated with the measuring
 * host's concurrency, and regenerated rather than diffed byte-for-
 * byte (see README).
 *
 *   bench_simcore [--quick] [gbench flags...]
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "crypto/channel.hh"
#include "crypto/gcm.hh"
#include "llm/model.hh"
#include "mem/sparse_memory.hh"
#include "runtime/cc_runtime.hh"
#include "serving/cluster.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/sharded_scheduler.hh"
#include "sim/worker_pool.hh"
#include "trace/generator.hh"

using namespace pipellm;

namespace {

void
BM_AesGcmSeal(benchmark::State &state)
{
    std::vector<std::uint8_t> key(32, 0x42);
    crypto::AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> pt(state.range(0), 0xab);
    std::vector<std::uint8_t> ct(pt.size());
    crypto::GcmTag tag;
    crypto::GcmIv iv{};
    std::uint64_t n = 0;
    for (auto _ : state) {
        iv[11] = std::uint8_t(n++);
        gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(512)->Arg(4096)->Arg(65536);

void
BM_AesGcmOpen(benchmark::State &state)
{
    std::vector<std::uint8_t> key(32, 0x42);
    crypto::AesGcm gcm(key.data(), key.size());
    std::vector<std::uint8_t> pt(state.range(0), 0xab);
    std::vector<std::uint8_t> ct(pt.size());
    crypto::GcmTag tag;
    crypto::GcmIv iv{};
    gcm.seal(iv, nullptr, 0, pt.data(), pt.size(), ct.data(), tag);
    std::vector<std::uint8_t> out(pt.size());
    for (auto _ : state) {
        bool ok = gcm.open(iv, nullptr, 0, ct.data(), ct.size(), tag,
                           out.data());
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesGcmOpen)->Arg(512)->Arg(4096);

void
BM_ChannelSealedTransfer(benchmark::State &state)
{
    crypto::ChannelConfig cfg;
    cfg.sample_limit = 512;
    crypto::SecureChannel ch(cfg);
    std::vector<std::uint8_t> sample(512, 0x17);
    std::uint64_t iv = 0;
    for (auto _ : state) {
        auto blob = ch.seal(crypto::Direction::HostToDevice, iv,
                            sample.data(), 32 * MiB);
        std::vector<std::uint8_t> out;
        bool ok = ch.open(blob, iv, out);
        benchmark::DoNotOptimize(ok);
        ++iv;
    }
}
BENCHMARK(BM_ChannelSealedTransfer);

void
BM_EventQueueSchedule(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        eq.reserve(1000);
        for (int i = 0; i < 1000; ++i)
            eq.schedule(Tick(i), [] {});
        eq.run();
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueSchedule);

/**
 * The hot shape in serving runs: a single self-rescheduling chain
 * (each dispatch schedules the next event), where the pool's
 * just-freed slot is immediately recycled.
 */
void
BM_EventQueueChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t remaining = 1000;
        std::function<void()> step = [&] {
            if (--remaining)
                eq.scheduleIn(1, [&] { step(); });
        };
        eq.schedule(0, [&] { step(); });
        eq.run();
        benchmark::DoNotOptimize(remaining);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueChain);

void
BM_ResourceBooking(benchmark::State &state)
{
    sim::EventQueue eq;
    sim::BandwidthResource link(eq, "link", 55e9, 400);
    for (auto _ : state) {
        Tick t = link.submit(1 * MiB);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_ResourceBooking);

void
BM_SparseMemoryWrite(benchmark::State &state)
{
    mem::SparseMemory arena("bench", 16 * GiB);
    auto r = arena.alloc(1 * GiB, "buf");
    std::vector<std::uint8_t> data(4096, 0x5c);
    std::uint64_t off = 0;
    for (auto _ : state) {
        arena.write(r.base + (off % (512 * MiB)), data.data(),
                    data.size());
        off += 4096;
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) * 4096);
}
BENCHMARK(BM_SparseMemoryWrite);

void
BM_SparseMemorySyntheticRead(benchmark::State &state)
{
    mem::SparseMemory arena("bench", 400 * GiB);
    auto r = arena.alloc(300 * GiB, "weights");
    std::vector<std::uint8_t> out(512);
    std::uint64_t off = 0;
    for (auto _ : state) {
        arena.read(r.base + (off % (200 * GiB)), out.data(),
                   out.size());
        off += 1 * GiB;
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) * 512);
}
BENCHMARK(BM_SparseMemorySyntheticRead);

// --- sharded-scheduler throughput sweep -> BENCH_simcore.json ---

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/** A dash of per-event work standing in for one engine iteration. */
std::uint64_t
spin(std::uint64_t x, unsigned rounds)
{
    for (unsigned i = 0; i < rounds; ++i) {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 29;
    }
    return x;
}

constexpr unsigned workRounds = 64;

struct Chain
{
    sim::EventQueue *queue = nullptr;
    std::uint64_t remaining = 0;
    std::uint64_t acc = 0;
};

void
chainStep(Chain *chain)
{
    chain->acc = spin(chain->acc + 1, workRounds);
    if (--chain->remaining) {
        chain->queue->scheduleIn(1 + (chain->acc & 7),
                                 [chain] { chainStep(chain); });
    }
}

/**
 * The pre-refactor event core, kept as a measured baseline: one
 * std::function per event in a binary-heap priority queue, no node
 * pooling. The sweep reports the pooled pairing-heap core's
 * events/sec against this.
 */
class ReferenceQueue
{
  public:
    void
    schedule(Tick when, std::function<void()> fn)
    {
        heap_.push(Ev{when, seq_++, std::move(fn)});
    }

    void
    scheduleIn(Tick delay, std::function<void()> fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    void
    run()
    {
        while (!heap_.empty()) {
            Ev ev = heap_.top();
            heap_.pop();
            now_ = ev.when;
            ev.fn();
        }
    }

  private:
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };
    std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

struct RefChain
{
    ReferenceQueue *queue = nullptr;
    std::uint64_t remaining = 0;
    std::uint64_t acc = 0;
};

void
refChainStep(RefChain *chain)
{
    chain->acc = spin(chain->acc + 1, workRounds);
    if (--chain->remaining) {
        chain->queue->scheduleIn(1 + (chain->acc & 7),
                                 [chain] { refChainStep(chain); });
    }
}

/** events/sec of @p shards reference queues drained back to back. */
double
referenceEventsPerSec(unsigned shards, std::uint64_t events_per_chain)
{
    std::vector<ReferenceQueue> queues(shards);
    std::vector<RefChain> chains(shards);
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned s = 0; s < shards; ++s) {
        chains[s] = RefChain{&queues[s], events_per_chain, s};
        RefChain *chain = &chains[s];
        queues[s].schedule(1, [chain] { refChainStep(chain); });
    }
    for (auto &queue : queues)
        queue.run();
    double wall = seconds(std::chrono::steady_clock::now() - t0);
    return double(shards) * double(events_per_chain) / wall;
}

/** events/sec of the sharded scheduler draining the same workload. */
double
shardedEventsPerSec(unsigned shards, unsigned workers,
                    std::uint64_t events_per_chain, double *wall_out)
{
    sim::ShardedScheduler::Config cfg;
    cfg.workers = workers;
    sim::ShardedScheduler sched(shards, cfg);
    std::vector<Chain> chains(shards);
    auto t0 = std::chrono::steady_clock::now();
    for (unsigned s = 0; s < shards; ++s) {
        chains[s] = Chain{&sched.shard(s), events_per_chain, s};
        Chain *chain = &chains[s];
        sched.shard(s).reserve(1);
        sched.shard(s).schedule(1, [chain] { chainStep(chain); });
    }
    // Chains are shard-local, so the whole drain is one unbounded
    // window — the decoupled cluster regime's shape.
    sched.runWindow(maxTick);
    double wall = seconds(std::chrono::steady_clock::now() - t0);
    PIPELLM_ASSERT(sched.dispatched() ==
                       std::uint64_t(shards) * events_per_chain,
                   "sweep lost events");
    if (wall_out)
        *wall_out = wall;
    return double(shards) * double(events_per_chain) / wall;
}

struct ClusterPoint
{
    unsigned replicas = 0;
    unsigned threads = 0;
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    std::uint64_t engine_steps = 0;
    bool sharded = false;
    double wall_s = 0;
    double steps_per_sec = 0;
    double sim_requests_per_sec = 0;
};

/** One tiny-model serving run: N CC replicas, private host. */
ClusterPoint
clusterPoint(unsigned replicas, unsigned threads,
             std::size_t requests_per_replica)
{
    llm::ModelConfig model;
    model.name = "tiny";
    model.num_layers = 8;
    model.hidden = 1024;
    model.heads = 16;
    model.vocab = 32000;
    model.max_positions = 512;

    auto spec = gpu::SystemSpec::h100();
    spec.gpu_mem_bytes = 448 * MiB;

    crypto::ChannelConfig channel;
    channel.sample_limit = 512;
    runtime::Platform platform(spec, channel, replicas);

    serving::ClusterConfig cfg;
    cfg.engine.model = model;
    cfg.engine.parallel_sampling = 2;
    cfg.engine.gpu_reserved_bytes = 160 * MiB;
    cfg.policy = serving::RoutePolicy::RoundRobin;
    cfg.threads = threads;

    serving::ClusterRouter router(
        platform,
        [](runtime::Platform &p, runtime::DeviceId d) {
            return std::make_unique<runtime::CcRuntime>(p, 1, d);
        },
        cfg);

    trace::DatasetProfile profile{"simcore", 48.0, 0.4, 32.0, 0.4};
    profile.max_len = 96;
    trace::TraceGenerator gen(profile, 5);
    auto trace =
        gen.poisson(requests_per_replica * replicas, 40.0 * replicas);

    auto t0 = std::chrono::steady_clock::now();
    auto result = router.run(trace);
    double wall = seconds(std::chrono::steady_clock::now() - t0);

    ClusterPoint point;
    point.replicas = replicas;
    point.threads = threads;
    point.requests = trace.size();
    point.completed = result.completed;
    point.engine_steps = result.engine_steps;
    point.sharded = result.sharded;
    point.wall_s = wall;
    point.steps_per_sec = double(result.engine_steps) / wall;
    point.sim_requests_per_sec = double(result.completed) / wall;
    return point;
}

void
runThroughputSweep(bool quick)
{
    const unsigned hw = sim::WorkerPool::hardwareConcurrency();
    const std::uint64_t events_per_chain = quick ? 20'000 : 200'000;
    const std::size_t requests_per_replica = quick ? 4 : 8;
    std::vector<unsigned> shard_counts =
        quick ? std::vector<unsigned>{1, 8}
              : std::vector<unsigned>{1, 2, 4, 8, 16, 32};
    std::vector<unsigned> worker_counts{1};
    if (hw > 1)
        worker_counts.push_back(hw);

    std::printf("\n=== sharded scheduler throughput (host: %u "
                "core(s)) ===\n",
                hw);

    std::filesystem::create_directories("bench_results");
    std::FILE *json =
        std::fopen("bench_results/BENCH_simcore.json", "w");
    PIPELLM_ASSERT(json, "cannot open BENCH_simcore.json");
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"simcore\",\n");
#ifdef NDEBUG
    std::fprintf(json, "  \"build\": \"release\",\n");
#else
    std::fprintf(json, "  \"build\": \"debug\",\n");
#endif
    std::fprintf(json, "  \"quick\": %s,\n", quick ? "true" : "false");
    std::fprintf(json, "  \"hardware_concurrency\": %u,\n", hw);
    std::fprintf(json, "  \"hw_threads\": %u,\n", hw);
    // On a 1-core host every workers=hw row degenerates to the
    // sequential case; downstream tooling must not read parallel
    // scaling out of such a record (ROADMAP item on 1-core container
    // artifacts).
    std::fprintf(json, "  \"parallel_scaling_valid\": %s,\n",
                 hw > 1 ? "true" : "false");
    if (hw == 1) {
        std::printf("WARNING: hw_threads == 1 -- parallel-scaling "
                    "rows are degenerate (workers=1 only); JSON is "
                    "flagged parallel_scaling_valid=false\n");
    }
    std::fprintf(json, "  \"events_per_chain\": %llu,\n",
                 (unsigned long long)events_per_chain);

    // Scheduler core: events/sec for N shard-local chains, against
    // the pre-refactor std::function/priority_queue baseline.
    std::fprintf(json, "  \"scheduler\": [\n");
    bool first = true;
    for (unsigned shards : shard_counts) {
        double ref = referenceEventsPerSec(shards, events_per_chain);
        for (unsigned workers : worker_counts) {
            double wall = 0;
            double pooled = shardedEventsPerSec(shards, workers,
                                                events_per_chain,
                                                &wall);
            std::printf("shards=%2u workers=%2u  %10.0f ev/s  "
                        "(ref %10.0f, x%.2f)\n",
                        shards, workers, pooled, ref, pooled / ref);
            std::fprintf(
                json,
                "%s    {\"shards\": %u, \"workers\": %u, "
                "\"wall_s\": %.6f, \"events_per_sec\": %.0f, "
                "\"reference_events_per_sec\": %.0f, "
                "\"speedup_vs_reference\": %.3f}",
                first ? "" : ",\n", shards, workers, wall, pooled,
                ref, pooled / ref);
            first = false;
        }
    }
    std::fprintf(json, "\n  ],\n");

    // Full serving stack: simulated requests/sec and engine
    // steps/sec as the replica count grows.
    std::printf("\n=== cluster co-simulation throughput ===\n");
    std::fprintf(json, "  \"cluster\": [\n");
    first = true;
    for (unsigned replicas : shard_counts) {
        for (unsigned threads : worker_counts) {
            auto p = clusterPoint(replicas, threads,
                                  requests_per_replica);
            std::printf("N=%2u threads=%2u  %8.1f sim req/s  "
                        "%9.0f steps/s  (%s, %llu steps)\n",
                        p.replicas, p.threads, p.sim_requests_per_sec,
                        p.steps_per_sec,
                        p.sharded ? "sharded" : "sequential",
                        (unsigned long long)p.engine_steps);
            std::fprintf(
                json,
                "%s    {\"replicas\": %u, \"threads\": %u, "
                "\"requests\": %llu, \"completed\": %llu, "
                "\"engine_steps\": %llu, \"sharded\": %s, "
                "\"wall_s\": %.6f, \"steps_per_sec\": %.0f, "
                "\"sim_requests_per_sec\": %.1f}",
                first ? "" : ",\n", p.replicas, p.threads,
                (unsigned long long)p.requests,
                (unsigned long long)p.completed,
                (unsigned long long)p.engine_steps,
                p.sharded ? "true" : "false", p.wall_s,
                p.steps_per_sec, p.sim_requests_per_sec);
            first = false;
        }
    }
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("\nwrote bench_results/BENCH_simcore.json\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our own flags before google-benchmark parses the rest.
    bool quick = false;
    std::vector<char *> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else
            passthrough.push_back(argv[i]);
    }
    int bench_argc = int(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    runThroughputSweep(quick);
    return 0;
}
