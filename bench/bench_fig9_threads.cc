/**
 * @file
 * Figure 9: pipelining vs trivial multi-threading (§7.3).
 *
 * vLLM, OPT-30B, Alpaca, parallel sampling 6. "CC-4t" throws four
 * CPU threads at each transfer's encryption without pipelining;
 * PipeLLM uses only two threads (1 encrypt + 1 decrypt) yet wins,
 * because the threads work *ahead* of the requests instead of on the
 * critical path.
 */

#include <cinttypes>

#include "bench/bench_drivers.hh"

using namespace benchutil;

int
main()
{
    banner("Figure 9: CC-4t (4 threads, no pipelining) vs PipeLLM "
           "(2 threads, pipelined)");
    auto csv = openCsv("fig9_threads.csv");
    csv.header({"rate", "mode", "threads", "norm_latency_s_tok",
                "overhead_pct"});

    auto model = llm::ModelConfig::opt30b();
    auto alpaca = trace::DatasetProfile::alpaca();

    struct Sys
    {
        Mode mode;
        unsigned threads;
    } systems[] = {
        {Mode::Plain, 0},
        {Mode::Cc, 1},
        {Mode::Cc4t, 4},
        {Mode::Pipe, 2},
    };

    for (double rate : {20.0, 30.0, 40.0}) {
        double base = 0;
        for (auto sys : systems) {
            auto p = runVllm(sys.mode, model, alpaca, 6, rate, 160);
            if (sys.mode == Mode::Plain)
                base = p.normalized_latency_s;
            double overhead =
                100.0 * (p.normalized_latency_s / base - 1.0);
            std::printf("rate %5.1f  %-8s (%u threads)  %.4f s/tok  "
                        "(+%5.1f%%)\n",
                        rate, toString(sys.mode), sys.threads,
                        p.normalized_latency_s, overhead);
            csv.field(rate).field(toString(sys.mode))
                .field(sys.threads).field(p.normalized_latency_s)
                .field(overhead).endRow();
        }
    }
    std::printf("\npaper: PipeLLM with 2 threads outperforms CC with "
                "4 threads — pipelining, not thread count, closes "
                "the gap\n");
    return 0;
}
