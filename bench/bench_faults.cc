/**
 * @file
 * Thin wrapper: the fault sweep, scenario-driven.
 *
 * The fault plan, sweep axes and trace that used to be hard-coded
 * here live in bench/scenarios/faults.scenario; this main keeps the
 * historical CLI (--quick) and runs the scenario through the shared
 * sweep runner. The scale-0 rows remain the byte-identical fault-free
 * baseline of the committed CSV.
 */

#include <cstdio>
#include <string>

#include "bench/scenario_cli.hh"

int
main(int argc, char **argv)
{
    // --quick: fewer replicas/scales/requests (CI-style smoke runs).
    pipellm::scenario::RunOptions opts;
    opts.progress = benchutil::printingSink();
    opts.quick = argc > 1 && std::string(argv[1]) == "--quick";

    std::printf("\n=== Fault sweep: latency/goodput vs fault scale, "
                "with recovery accounting ===\n");
    auto spec = benchutil::loadScenarioOrDie(
        benchutil::resolveScenarioPath("faults"));
    pipellm::scenario::runScenario(spec, opts);

    std::printf("\nexpectation: scale 0 reproduces the fault-free "
                "baseline exactly; latency degrades smoothly with the "
                "fault scale while goodput tracks the baseline until "
                "crashes dominate; single-replica clusters drop every "
                "orphaned request where multi-replica clusters "
                "requeue them onto survivors; PipeLLM's advantage "
                "over CC narrows at high scales as degraded mode "
                "falls back to on-demand encryption\n");
    return 0;
}
