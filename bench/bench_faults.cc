/**
 * @file
 * Fault sweep: cluster serving under a deterministic fault plan whose
 * intensity scales from 0 (disarmed — the exact fault-free baseline)
 * upward, CC vs PipeLLM, 1-4 replicas.
 *
 * Each step of the sweep multiplies one base plan: PCIe tag
 * corruption, copy-engine stalls, crypto-lane faults, and whole
 * replica crashes all intensify together. The interesting outputs
 * are goodput (tokens of *completed* requests per second — requeued
 * or dropped work does not count) and the recovery price visible in
 * FaultReport: fresh-IV retries, watchdog backoff, degraded-mode
 * intervals, and failover requeues. Expectation: latency degrades
 * smoothly with the fault scale while goodput stays near the
 * fault-free line until replicas start dying, and PipeLLM's margin
 * over CC narrows as degraded mode converts speculative traffic back
 * into on-demand encryption.
 */

#include <algorithm>
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "serving/cluster.hh"
#include "tools/chaos/chaos.hh"
#include "trace/generator.hh"

using namespace benchutil;

namespace {

constexpr double ratePerDevice = 0.8;

/**
 * The scale-1 fault environment. Per-crossing probabilities are low
 * enough that even scale 4 stays far from the bounded-retry limit;
 * the crash rate is calibrated against the ~30 s sim makespan so
 * that scale 1 kills the occasional replica and scale 4 kills most.
 */
fault::FaultPlan
basePlan(double scale)
{
    fault::FaultPlan plan;
    plan.seed = 1009;
    plan.tag_corruption_rate = 0.02 * scale;
    plan.copy_stall_rate = 0.01 * scale;
    plan.lane_fault_rate = 0.01 * scale;
    plan.replica_crash_rate = 0.02 * scale;
    // Crashed replicas re-key and rejoin after a seeded repair delay
    // (mean 1/rate); the sweep's restart columns measure the rejoin
    // price and the goodput dip around each crash.
    plan.replica_restart_rate = 0.1 * scale;
    return plan;
}

serving::ClusterResult
runCluster(Mode mode, unsigned n_devices, std::size_t n_requests,
           double fault_scale)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel(),
                               n_devices);
    if (fault_scale > 0)
        platform.armFaults(basePlan(fault_scale));

    serving::ClusterConfig cfg;
    cfg.engine.model = llm::ModelConfig::opt30b();
    cfg.engine.parallel_sampling = 6;

    std::uint64_t block_bytes =
        std::uint64_t(cfg.engine.block_tokens) *
        cfg.engine.model.kvBytesPerToken();
    auto pipe_cfg = kvPipeConfig(block_bytes);

    serving::ClusterRouter router(
        platform,
        [mode, &pipe_cfg](runtime::Platform &p,
                          runtime::DeviceId device) {
            return makeRuntime(mode, p, pipe_cfg, device);
        },
        cfg);

    auto profile = trace::DatasetProfile::shareGpt();
    profile.max_len = 1024;
    trace::TraceGenerator gen(profile, 42);
    auto result =
        router.run(gen.poisson(n_requests, ratePerDevice * n_devices));

    if (fault_scale == 0) {
        // Disarmed rows are the byte-identical fault-free baseline;
        // armed rows legitimately see injected integrity failures.
        for (unsigned d = 0; d < n_devices; ++d)
            PIPELLM_ASSERT(platform.gpu(d).integrityFailures() == 0,
                           "integrity failure on device ", d);
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    // --quick: fewer replicas/scales/requests (CI-style smoke runs).
    bool quick = argc > 1 && std::string(argv[1]) == "--quick";

    banner("Fault sweep: latency/goodput vs fault scale, with "
           "recovery accounting");
    auto csv = openCsv("faults.csv");
    // The column prefix up to replica_lost_tokens is frozen: scale-0
    // rows must stay byte-identical to the committed file, so
    // p90_norm_latency_s_tok still carries the historical completed-
    // weighted mean of replica p90s (ClusterResult::
    // replica_weighted_p90) and every new column — the true merged
    // p90 and the restart/goodput-dip metrics — is appended after it.
    csv.header({"n_devices", "mode", "fault_scale", "tag_rate",
                "stall_rate", "lane_rate", "crash_rate_per_s",
                "tokens_per_s", "goodput_tok_per_s",
                "norm_latency_s_tok", "p90_norm_latency_s_tok",
                "completed", "dropped", "makespan_s", "tag_faults",
                "tag_retries", "copy_stalls", "lane_faults",
                "crashes", "requeued", "lost_tokens",
                "degraded_entries", "degraded_sends",
                "retry_latency_s", "replica", "replica_crashed",
                "replica_crash_s", "replica_requests",
                "replica_requeued", "replica_absorbed",
                "replica_dropped", "replica_lost_tokens",
                "true_p90_norm_latency_s_tok", "restart_rate_per_s",
                "restarts", "rejoin_time_total_s",
                "goodput_dip_depth", "goodput_dip_s",
                "replica_crash_count", "replica_restarts",
                "replica_rejoined", "replica_rejoin_s",
                "replica_time_to_rejoin_s"});

    std::vector<unsigned> device_counts =
        quick ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4};
    std::vector<double> scales =
        quick ? std::vector<double>{0, 2}
              : std::vector<double>{0, 0.5, 1, 2, 4};
    std::size_t requests_per_device = quick ? 16 : 24;

    for (Mode mode : {Mode::Cc, Mode::Pipe}) {
        for (unsigned n : device_counts) {
            std::printf("\n-- %s, N=%u --\n", toString(mode), n);
            for (double scale : scales) {
                auto r = runCluster(mode, n, requests_per_device * n,
                                    scale);
                const auto plan = basePlan(scale);
                const auto &f = r.faults;
                std::printf(
                    "scale %.1f  %8.1f tok/s goodput %8.1f  "
                    "%.4f s/tok  retries %" PRIu64 "  crashes %"
                    PRIu64 "  restarts %" PRIu64 "  requeued %"
                    PRIu64 "  dropped %" PRIu64 "\n",
                    scale, r.tokens_per_sec, r.goodput_tokens_per_sec,
                    r.normalized_latency, f.tag_retries,
                    f.replica_crashes, f.replica_restarts,
                    f.requeued_requests, r.dropped);
                // Goodput dip around the first crash: depth and time
                // below half the pre-crash goodput (zeros when no
                // replica crashed, e.g. every scale-0 row).
                chaos::DipMetrics dip;
                Tick first_crash = maxTick;
                for (const auto &rep : r.replicas) {
                    if (rep.crash_count > 0)
                        first_crash =
                            std::min(first_crash, rep.crash_time);
                }
                if (first_crash != maxTick) {
                    auto timeline = chaos::goodputTimeline(
                        r.completions, seconds(2));
                    dip = chaos::dipAfter(timeline, first_crash, 0.5);
                }
                for (const auto &rep : r.replicas) {
                    csv.field(n).field(toString(mode)).field(scale)
                        .field(scale > 0 ? plan.tag_corruption_rate
                                         : 0.0)
                        .field(scale > 0 ? plan.copy_stall_rate : 0.0)
                        .field(scale > 0 ? plan.lane_fault_rate : 0.0)
                        .field(scale > 0 ? plan.replica_crash_rate
                                         : 0.0)
                        .field(r.tokens_per_sec)
                        .field(r.goodput_tokens_per_sec)
                        .field(r.normalized_latency)
                        .field(r.replica_weighted_p90)
                        .field(r.completed).field(r.dropped)
                        .field(toSeconds(r.makespan))
                        .field(f.tag_faults).field(f.tag_retries)
                        .field(f.copy_stalls).field(f.lane_faults)
                        .field(f.replica_crashes)
                        .field(f.requeued_requests)
                        .field(f.lost_tokens).field(f.degraded_entries)
                        .field(f.degraded_sends)
                        .field(toSeconds(f.retry_latency))
                        .field(rep.device).field(rep.crashed ? 1 : 0)
                        .field(rep.crashed ? toSeconds(rep.crash_time)
                                           : 0.0)
                        .field(rep.requests).field(rep.requeued)
                        .field(rep.absorbed).field(rep.dropped)
                        .field(rep.lost_tokens)
                        .field(r.p90_normalized_latency)
                        .field(scale > 0 ? plan.replica_restart_rate
                                         : 0.0)
                        .field(f.replica_restarts)
                        .field(toSeconds(f.restart_rejoin_ticks))
                        .field(dip.dip_depth)
                        .field(toSeconds(dip.dip_duration))
                        .field(rep.crash_count).field(rep.restarts)
                        .field(rep.rejoined ? 1 : 0)
                        .field(rep.rejoined
                                   ? toSeconds(rep.rejoin_time)
                                   : 0.0)
                        .field(toSeconds(rep.time_to_rejoin))
                        .endRow();
                }
            }
        }
    }

    std::printf("\nexpectation: scale 0 reproduces the fault-free "
                "baseline exactly; latency degrades smoothly with the "
                "fault scale while goodput tracks the baseline until "
                "crashes dominate; single-replica clusters drop every "
                "orphaned request where multi-replica clusters "
                "requeue them onto survivors; PipeLLM's advantage "
                "over CC narrows at high scales as degraded mode "
                "falls back to on-demand encryption\n");
    return 0;
}
