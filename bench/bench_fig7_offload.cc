/**
 * @file
 * Figure 7: model offloading with PipeLLM (§7.2).
 *
 * FlexGen serves OPT-66B and 4-bit OPT-175B (input/output 32/128 and
 * 256/32); PEFT fine-tunes OPT-30B and OPT-13B. Enabling CC costs
 * 82.8-88.2% (FlexGen) and up to 36.2% (PEFT); PipeLLM cuts the
 * overhead below 19.6%, the residue owed to the 40 GB/s CC copy path.
 */

#include "bench/bench_drivers.hh"

using namespace benchutil;

namespace {

void
flexgenHalf()
{
    banner("Figure 7 (FlexGen): OPT-66B and OPT-175B-int4 throughput");
    auto csv = openCsv("fig7_flexgen.csv");
    csv.header({"model", "config", "mode", "tokens_per_sec",
                "overhead_pct", "hit_rate"});

    struct Cfg
    {
        llm::ModelConfig model;
        std::uint32_t in, out;
        unsigned batch;
    } cfgs[] = {
        {llm::ModelConfig::opt66b(), 32, 128, 32},
        {llm::ModelConfig::opt66b(), 256, 32, 32},
        {llm::ModelConfig::opt175bInt4(), 32, 128, 16},
        {llm::ModelConfig::opt175bInt4(), 256, 32, 16},
    };

    for (auto &c : cfgs) {
        double base = 0;
        for (Mode mode : {Mode::Plain, Mode::Cc, Mode::Pipe}) {
            auto p = runFlexGen(mode, c.model, c.in, c.out, 96,
                                c.batch);
            if (mode == Mode::Plain)
                base = p.tokens_per_sec;
            double overhead =
                100.0 * (1 - p.tokens_per_sec / base);
            std::printf("%-14s in=%-3u out=%-3u %-8s %8.1f tok/s  "
                        "overhead %5.1f%%",
                        c.model.name.c_str(), c.in, c.out,
                        toString(mode), p.tokens_per_sec, overhead);
            if (p.hit_rate >= 0)
                std::printf("  hit-rate %.1f%%", 100 * p.hit_rate);
            std::printf("\n");
            char label[32];
            std::snprintf(label, sizeof(label), "in%u_out%u", c.in,
                          c.out);
            csv.field(c.model.name).field(label).field(toString(mode))
                .field(p.tokens_per_sec).field(overhead)
                .field(p.hit_rate).endRow();
        }
    }
    std::printf("paper: CC drop 82.8-88.2%%; PipeLLM overhead "
                "<19.6%% (bounded by the 40 GB/s copy path)\n");
}

void
peftHalf()
{
    banner("Figure 7 (PEFT): OPT-30B and OPT-13B fine-tuning");
    auto csv = openCsv("fig7_peft.csv");
    csv.header({"model", "mode", "tokens_per_sec", "overhead_pct"});

    struct Cfg
    {
        llm::ModelConfig model;
        unsigned batch;
    } cfgs[] = {
        {llm::ModelConfig::opt30b(), 5},
        {llm::ModelConfig::opt13b(), 18},
    };

    for (auto &c : cfgs) {
        double base = 0;
        for (Mode mode : {Mode::Plain, Mode::Cc, Mode::Pipe}) {
            auto p = runPeft(mode, c.model, c.batch, 192);
            if (mode == Mode::Plain)
                base = p.tokens_per_sec;
            double overhead =
                100.0 * (1 - p.tokens_per_sec / base);
            std::printf("%-10s %-8s %8.0f tok/s  overhead %5.1f%% "
                        "(%u offloaded layers)\n",
                        c.model.name.c_str(), toString(mode),
                        p.tokens_per_sec, overhead,
                        p.offloaded_layers);
            csv.field(c.model.name).field(toString(mode))
                .field(p.tokens_per_sec).field(overhead).endRow();
        }
    }
    std::printf("paper: CC drop up to 36.2%% (30B) / 14.0%% (13B); "
                "PipeLLM overhead <19.6%%\n");
}

} // namespace

int
main()
{
    flexgenHalf();
    peftHalf();
    return 0;
}
