/**
 * @file
 * Ablations on PipeLLM's design choices (DESIGN.md experiment index):
 *
 *  A1: asynchronous vs synchronous D2H decryption (§5.4)
 *  A2: IV leeway sweep — how much slack small transfers need (§5.1)
 *  A3: pipeline depth sweep — lookahead vs private-memory footprint
 *  A4: speculation off — pipelined-but-on-demand encryption only
 *  A5: NOP cost — how cheap is padding the IV counter (§5.3)
 *  A6: swap vs recompute preemption under each security mode — a
 *      system-level response to the CC tax that PipeLLM obviates
 *  A7: FlexGen full offloading (weights + KV) — the configuration the
 *      paper's evaluation deliberately excluded (§7.2)
 */

#include <cinttypes>

#include "bench/bench_drivers.hh"

using namespace benchutil;
using runtime::CopyKind;
using runtime::Stream;

namespace {

double
vllmLatency(const core::PipeLlmConfig &cfg, double rate)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel());
    core::PipeLlmRuntime rt(platform, cfg);
    serving::VllmConfig vcfg;
    vcfg.model = llm::ModelConfig::opt30b();
    vcfg.parallel_sampling = 6;
    serving::VllmEngine engine(rt, vcfg);
    trace::TraceGenerator gen(trace::DatasetProfile::alpaca(), 42);
    return engine.run(gen.poisson(160, rate)).normalized_latency;
}

double
flexgenTps(const core::PipeLlmConfig &cfg)
{
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel());
    core::PipeLlmRuntime rt(platform, cfg);
    serving::FlexGenConfig fcfg;
    fcfg.model = llm::ModelConfig::opt66b();
    fcfg.batch = 32;
    fcfg.input_len = 32;
    fcfg.output_len = 32;
    fcfg.num_requests = 64;
    return serving::FlexGenEngine(rt, fcfg).run().tokens_per_sec;
}

void
asyncDecrypt()
{
    banner("A1: asynchronous vs synchronous D2H decryption (§5.4)");
    auto csv = openCsv("ablation_async_decrypt.csv");
    csv.header({"async", "norm_latency_s_tok"});
    std::uint64_t block =
        16ull * llm::ModelConfig::opt30b().kvBytesPerToken();
    for (bool async : {true, false}) {
        auto cfg = kvPipeConfig(block);
        cfg.async_decrypt = async;
        double lat = vllmLatency(cfg, 30.0);
        std::printf("async_decrypt=%-5s  %.4f s/tok\n",
                    async ? "on" : "off", lat);
        csv.field(async ? 1 : 0).field(lat).endRow();
    }
}

void
leewaySweep()
{
    banner("A2: IV leeway sweep (§5.1)");
    auto csv = openCsv("ablation_leeway.csv");
    csv.header({"leeway", "tokens_per_sec"});
    for (std::uint64_t leeway : {0ull, 1ull, 2ull, 4ull, 8ull}) {
        auto cfg = offloadPipeConfig(llm::ModelConfig::opt66b());
        cfg.iv_leeway = leeway;
        double tps = flexgenTps(cfg);
        std::printf("leeway %2" PRIu64 "  %8.1f tok/s\n", leeway, tps);
        csv.field(leeway).field(tps).endRow();
    }
}

void
depthSweep()
{
    banner("A3: pipeline depth sweep");
    auto csv = openCsv("ablation_depth.csv");
    csv.header({"depth", "tokens_per_sec"});
    for (unsigned depth : {2u, 4u, 8u, 12u, 16u}) {
        auto cfg = offloadPipeConfig(llm::ModelConfig::opt66b());
        cfg.pipeline_depth = depth;
        double tps = flexgenTps(cfg);
        std::printf("depth %2u  %8.1f tok/s\n", depth, tps);
        csv.field(depth).field(tps).endRow();
    }
}

void
speculationOff()
{
    banner("A4: speculation off (on-demand encryption only)");
    auto csv = openCsv("ablation_speculation.csv");
    csv.header({"speculation", "tokens_per_sec"});
    for (bool spec : {true, false}) {
        auto cfg = offloadPipeConfig(llm::ModelConfig::opt66b());
        cfg.speculation = spec;
        double tps = flexgenTps(cfg);
        std::printf("speculation=%-5s  %8.1f tok/s\n",
                    spec ? "on" : "off", tps);
        csv.field(spec ? 1 : 0).field(tps).endRow();
    }
}

void
nopCost()
{
    banner("A5: cost of one NOP (1-byte IV-advancing transfer, §5.3)");
    auto csv = openCsv("ablation_nop.csv");
    csv.header({"transfers", "simulated_us_per_nop"});

    // Force every prediction wrong so each swap costs a NOP: two
    // chunks requested alternately while history says otherwise is
    // fiddly; instead measure directly via small CC transfers of 1 B.
    runtime::Platform platform(gpu::SystemSpec::h100(), benchChannel());
    runtime::CcRuntime rt(platform);
    auto host = platform.allocHost(4096, "src");
    auto dev = platform.gpu(0).alloc(4096, "dst");
    Stream &s = rt.createStream("s");
    Tick now = 0;
    const int reps = 1000;
    Tick start = now;
    for (int i = 0; i < reps; ++i)
        now = rt.memcpy(CopyKind::HostToDevice, dev.base, host.base, 1,
                        s, now);
    double us = toMicroseconds(now - start) / reps;
    std::printf("1-byte CC transfer: %.2f us each (control-plane "
                "bound) -> NOP padding is cheap relative to any "
                "swap\n", us);
    csv.field(reps).field(us).endRow();
}

void
swapVsRecompute()
{
    banner("A6: swap vs recompute preemption under each security mode");
    auto csv = openCsv("ablation_preempt_mode.csv");
    csv.header({"mode", "policy", "norm_latency_s_tok"});

    auto model = llm::ModelConfig::opt30b();
    std::uint64_t block =
        16ull * model.kvBytesPerToken();
    for (Mode mode : {Mode::Plain, Mode::Cc, Mode::Pipe}) {
        for (auto policy : {serving::PreemptMode::Swap,
                            serving::PreemptMode::Recompute}) {
            runtime::Platform platform(gpu::SystemSpec::h100(),
                                       benchChannel());
            auto rt = makeRuntime(mode, platform, kvPipeConfig(block));
            serving::VllmConfig vcfg;
            vcfg.model = model;
            vcfg.parallel_sampling = 6;
            vcfg.preempt_mode = policy;
            serving::VllmEngine engine(*rt, vcfg);
            trace::TraceGenerator gen(trace::DatasetProfile::alpaca(),
                                      42);
            auto r = engine.run(gen.poisson(160, 30.0));
            const char *pname =
                policy == serving::PreemptMode::Swap ? "swap"
                                                     : "recompute";
            std::printf("%-8s %-10s %.4f s/tok\n", toString(mode),
                        pname, r.normalized_latency);
            csv.field(toString(mode)).field(pname)
                .field(r.normalized_latency).endRow();
        }
    }
    std::printf("recompute dodges the CC encryption tax entirely (at "
                "a GPU-compute price); PipeLLM makes swapping "
                "competitive again\n");
}

void
kvOffload()
{
    banner("A7: FlexGen OPT-66B with full offloading (weights + KV)");
    auto csv = openCsv("ablation_kv_offload.csv");
    csv.header({"mode", "kv_offload", "tokens_per_sec"});

    auto model = llm::ModelConfig::opt66b();
    for (bool kv : {false, true}) {
        double base = 0;
        for (Mode mode : {Mode::Plain, Mode::Cc, Mode::Pipe}) {
            runtime::Platform platform(gpu::SystemSpec::h100(),
                                       benchChannel());
            auto rt = makeRuntime(mode, platform,
                                  offloadPipeConfig(model));
            serving::FlexGenConfig fcfg;
            fcfg.model = model;
            fcfg.batch = 32;
            fcfg.input_len = 32;
            fcfg.output_len = 32;
            fcfg.num_requests = 64;
            fcfg.kv_offload = kv;
            auto r = serving::FlexGenEngine(*rt, fcfg).run();
            if (mode == Mode::Plain)
                base = r.tokens_per_sec;
            std::printf("%-8s kv_offload=%-5s %8.1f tok/s "
                        "(overhead %5.1f%%)\n",
                        toString(mode), kv ? "on" : "off",
                        r.tokens_per_sec,
                        100.0 * (1 - r.tokens_per_sec / base));
            csv.field(toString(mode)).field(kv ? 1 : 0)
                .field(r.tokens_per_sec).endRow();
        }
    }
    std::printf("the write-hot KV stream is harder to speculate than "
                "read-only weights, but the set/order machinery still "
                "recovers most of the CC loss\n");
}

} // namespace

int
main()
{
    asyncDecrypt();
    leewaySweep();
    depthSweep();
    speculationOff();
    nopCost();
    swapVsRecompute();
    kvOffload();
    return 0;
}
