/**
 * @file
 * Shared CLI glue for scenario-driven bench binaries.
 *
 * The scenario library itself never prints (src/ bans the printf
 * family); binaries attach the printf-backed progress sink here and
 * share the --quick/--threads/--out flag handling between pipellm_run
 * and the thin legacy wrappers.
 */

#ifndef PIPELLM_BENCH_SCENARIO_CLI_HH
#define PIPELLM_BENCH_SCENARIO_CLI_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "scenario/runner.hh"
#include "scenario/spec.hh"

namespace benchutil {

/** Progress sink printing one line per message to stdout. */
inline std::function<void(const std::string &)>
printingSink()
{
    return [](const std::string &line) {
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
    };
}

/**
 * Resolve @p arg to a scenario path: an existing file wins; a bare
 * name falls back to <scenario-dir>/<name>[.scenario] so
 * `pipellm_run cluster_scale` works from any build directory.
 */
inline std::string
resolveScenarioPath(const std::string &arg)
{
#ifdef PIPELLM_SCENARIO_DIR
    if (!std::ifstream(arg).good() &&
        arg.find('/') == std::string::npos) {
        std::string name = arg;
        const std::string ext = ".scenario";
        if (name.size() < ext.size() ||
            name.compare(name.size() - ext.size(), ext.size(), ext) !=
                0)
            name += ext;
        std::string fallback =
            std::string(PIPELLM_SCENARIO_DIR) + "/" + name;
        if (std::ifstream(fallback).good())
            return fallback;
    }
#endif
    return arg;
}

/** Load @p path or exit(1) with every parse error on stderr. */
inline pipellm::scenario::ScenarioSpec
loadScenarioOrDie(const std::string &path)
{
    auto parsed = pipellm::scenario::loadScenario(path);
    if (!parsed.ok()) {
        for (const auto &e : parsed.errors)
            std::fprintf(stderr, "%s\n", e.c_str());
        std::exit(1);
    }
    auto problems = parsed.spec.validate();
    if (!problems.empty()) {
        for (const auto &e : problems)
            std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
        std::exit(1);
    }
    return parsed.spec;
}

} // namespace benchutil

#endif // PIPELLM_BENCH_SCENARIO_CLI_HH
